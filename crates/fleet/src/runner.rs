//! The fixed-pool executor that sweeps a [`ScenarioMatrix`] into a
//! [`MetricsSink`].

use crate::metrics::{FullReportSink, MetricsSink, RunRecord};
use crate::profile::PhaseProfile;
use crate::report::FleetReport;
use crate::scenario::{Scenario, ScenarioMatrix, Workload};
use ehdl::deployment::quantized_accuracy;
use ehdl::ehsim::{
    ExecPhase, ExecutionPlan, FaultPlan, Integrity, IntermittentExecutor, RunTrace,
    TimelineRecorder,
};
use ehdl::{BoardSpec, Deployment, Error, Strategy};
use ehdl_netsim::{DeviceTimeline, SharedField, WorldSim};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

/// The default [`cache_entries`](FleetBuilder::cache_entries) bound for
/// the deployment and trace caches — generous enough that every sweep
/// in the repo (and any reasonably shaped matrix) runs eviction-free,
/// while still capping residency on adversarially wide axes.
pub(crate) const DEFAULT_CACHE_ENTRIES: usize = 1024;

/// A tiny deterministic LRU for the runner's bounded caches: keys are
/// the dense cache indices scenario expansion derives, values are
/// `Arc`s handed out while the lock is released. Lookups are O(len),
/// which is fine at the capacities involved (default 1024), and the
/// back-of-vec recency order makes eviction a pure function of the
/// lookup sequence.
struct Lru<V> {
    cap: usize,
    entries: Vec<(usize, V)>,
    evictions: u64,
}

impl<V: Clone> Lru<V> {
    fn new(cap: usize) -> Self {
        Lru {
            cap: cap.max(1),
            entries: Vec::new(),
            evictions: 0,
        }
    }

    /// The value under `key`, refreshed to most-recently-used.
    fn get(&mut self, key: usize) -> Option<V> {
        let pos = self.entries.iter().position(|(k, _)| *k == key)?;
        let entry = self.entries.remove(pos);
        let value = entry.1.clone();
        self.entries.push(entry);
        Some(value)
    }

    /// Inserts `value` unless a racing worker already filled the slot
    /// (first insert wins, like the trace-recording race), evicting the
    /// least-recently-used entry when over capacity. Returns the
    /// resident value.
    fn insert(&mut self, key: usize, value: V) -> V {
        if let Some(existing) = self.get(key) {
            return existing;
        }
        self.entries.push((key, value.clone()));
        if self.entries.len() > self.cap {
            self.entries.remove(0);
            self.evictions += 1;
        }
        value
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn evictions(&self) -> u64 {
        self.evictions
    }
}

/// Everything a worker needs for one deployment key, built lazily on
/// first demand and cached (bounded) across scenarios: the deployment,
/// its priced accuracy, and its shared execution plan with the plan's
/// stable slot index (the trace-cache key component).
struct DeployState {
    deployment: Deployment,
    accuracy: f64,
    plan_slot: usize,
    plan: Arc<ExecutionPlan>,
}

/// The bounded cache of recorded deterministic trajectories, keyed by
/// the dense (plan, environment, budget, fault) index. A rebuilt entry
/// is bit-identical to the evicted one (recording is deterministic), so
/// eviction trades wall-clock for memory without touching any report.
type TraceCache = Mutex<Lru<Arc<RunTrace>>>;

/// The append-only store of compiled execution plans, one per
/// (workload, board, strategy, integrity scheme) — the scheme is part
/// of the key because it changes the plan's durable-write pricing; the
/// Vec position doubles as the stable `plan_slot` the trace-cache key
/// is built from.
type PlanStore = Mutex<
    Vec<(
        (Workload, BoardSpec, Strategy, Integrity),
        Arc<ExecutionPlan>,
    )>,
>;

/// Executes a [`ScenarioMatrix`] across a fixed pool of worker threads,
/// streaming one [`RunRecord`] per (scenario, run) into a
/// [`MetricsSink`].
///
/// Work is handed out scenario-by-scenario from an atomic cursor, so
/// any interleaving of workers visits every scenario exactly once. Each
/// scenario's runs fold into the sink's per-scenario accumulator inside
/// one worker in run order; completed accumulators flow back to the
/// coordinating thread, which merges them **in matrix order** as soon
/// as the ordered prefix is complete. That makes every sink's report a
/// pure function of the matrix: same matrix ⇒ identical report,
/// whether 1 or 64 workers ran it — and sinks that fold into fixed-size
/// state (e.g. [`DigestSink`](crate::DigestSink)) keep the whole sweep
/// in O(1) memory, with nothing retained per run.
///
/// Besides sharing each built [`Deployment`] across environments, the
/// runner compiles one costed [`ExecutionPlan`] per (workload, board,
/// strategy, integrity scheme) — op costs are program-, board- and
/// scheme-derived, never data- or environment-derived — and shares it
/// (via `Arc`) across every
/// environment, seed and worker, so a 10k-scenario sweep prices each
/// distinct program exactly once. Deployments and recorded traces live
/// in **bounded LRU caches** ([`cache_entries`](FleetBuilder::cache_entries)
/// deep, default 1024): entries are built lazily by the first worker
/// that needs them, and an evicted entry is rebuilt deterministically
/// on its next miss, so the cap trades wall-clock for memory without
/// changing a single report bit.
///
/// Deterministic environments (every catalog entry except the burst
/// sources) go one step further: an intermittent run is a pure function
/// of (plan, environment, budget, fault schedule) — it never reads
/// input data — so the runner records the trajectory once as a
/// [`RunTrace`] and replays it for every other seed, run and worker of
/// that tuple. Replays are bit-identical to live runs by construction
/// (the per-op meter records are re-applied in order against each
/// board's own tallies), which is what keeps the report
/// worker-count-independent.
///
/// Fault injection rides the same machinery: each
/// [`FaultSpec`](crate::FaultSpec) on the matrix's fault axis compiles
/// to one seeded [`FaultPlan`] shared across the sweep, and the
/// fault-free spec compiles to a disabled plan whose runs are
/// bit-identical to a pre-fault sweep.
#[derive(Debug, Clone)]
pub struct FleetRunner {
    workers: usize,
    reference: bool,
    cache_entries: usize,
}

impl FleetRunner {
    /// A runner with the given worker-pool size (clamped to ≥ 1).
    pub fn new(workers: usize) -> Self {
        FleetRunner {
            workers: workers.max(1),
            reference: false,
            cache_entries: DEFAULT_CACHE_ENTRIES,
        }
    }

    /// A builder defaulting to one worker per available core and the
    /// compatibility [`FullReportSink`]; swap the sink with
    /// [`sink`](FleetBuilder::sink):
    ///
    /// ```no_run
    /// use ehdl_fleet::{DigestSink, FleetRunner, ScenarioMatrix};
    ///
    /// let digest = FleetRunner::builder()
    ///     .workers(8)
    ///     .sink(DigestSink::new())
    ///     .run(&ScenarioMatrix::new())?;
    /// println!("{digest}");
    /// # Ok::<(), ehdl::Error>(())
    /// ```
    pub fn builder() -> FleetBuilder<FullReportSink> {
        FleetBuilder {
            workers: std::thread::available_parallelism().map_or(1, usize::from),
            reference: false,
            cache_entries: DEFAULT_CACHE_ENTRIES,
            sink: FullReportSink::new(),
        }
    }

    /// Routes every intermittent run through the retained op-by-op
    /// reference interpreter instead of the compiled execution plans,
    /// with a freshly lowered program per scenario — the pre-plan
    /// executor, kept so parity suites can diff the two paths over a
    /// whole matrix. Slow by design; not for production sweeps.
    pub fn reference_executor(mut self, reference: bool) -> Self {
        self.reference = reference;
        self
    }

    /// The pool size.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Sweeps the matrix into the compatibility [`FullReportSink`],
    /// retaining every scenario's report — the classic dense
    /// [`FleetReport`].
    ///
    /// # Errors
    ///
    /// Returns the error of the lowest-indexed failing scenario (or a
    /// deployment-build error), so failures are deterministic too.
    pub fn run(&self, matrix: &ScenarioMatrix) -> Result<FleetReport, Error> {
        self.run_with_sink(matrix, FullReportSink::new())
    }

    /// Sweeps the matrix: fans the scenarios out over the pool (each
    /// distinct deployment is built once, lazily, by the first worker
    /// that needs it) and streams every run into `sink` under the
    /// deterministic fold/merge contract of [`MetricsSink`].
    ///
    /// # Errors
    ///
    /// Returns the error of the lowest-indexed failing scenario (or a
    /// deployment-build error, or the sink's first write error), so
    /// failures are deterministic too.
    pub fn run_with_sink<S: MetricsSink + Send>(
        &self,
        matrix: &ScenarioMatrix,
        sink: S,
    ) -> Result<S::Report, Error> {
        self.run_range_with_sink(matrix, 0..matrix.len(), sink)
    }

    /// Sweeps one contiguous index range of the matrix into `sink` —
    /// the entry point shard workers use. Scenario indices, fold order
    /// and per-scenario results are identical to the corresponding
    /// stretch of a whole-matrix sweep; only the range's deployments and
    /// plans are built, so memory stays O(range), not O(matrix). Ends
    /// beyond the matrix clamp.
    ///
    /// # Errors
    ///
    /// See [`run_with_sink`](Self::run_with_sink).
    pub fn run_range_with_sink<S: MetricsSink + Send>(
        &self,
        matrix: &ScenarioMatrix,
        range: std::ops::Range<usize>,
        sink: S,
    ) -> Result<S::Report, Error> {
        self.run_range_inner(matrix, range, sink, false)
            .map(|(report, _)| report)
    }

    /// [`run_with_sink`](Self::run_with_sink) with phase profiling: the
    /// sweep additionally collects a [`PhaseProfile`] — wall-clock span
    /// digests for charge solving, plan execution, checkpoint/restore,
    /// trace replay and sink folding, plus plan/trace/deployment cache
    /// counters.
    ///
    /// The profile is a side channel: the sink report stays
    /// **bit-identical** to the unprofiled sweep at any worker count.
    /// Span and cache-lookup *counts* are deterministic at one worker;
    /// at higher worker counts `hits + misses` totals stay fixed but
    /// racing workers can shift the trace cache's hit/miss split (both
    /// recordings of a deterministic pair are bit-identical, so either
    /// outcome is equally valid). Timings are wall-clock and therefore
    /// never deterministic.
    ///
    /// # Errors
    ///
    /// See [`run_with_sink`](Self::run_with_sink).
    pub fn run_profiled_with_sink<S: MetricsSink + Send>(
        &self,
        matrix: &ScenarioMatrix,
        sink: S,
    ) -> Result<(S::Report, PhaseProfile), Error> {
        self.run_range_profiled_with_sink(matrix, 0..matrix.len(), sink)
    }

    /// [`run_range_with_sink`](Self::run_range_with_sink) with phase
    /// profiling (see
    /// [`run_profiled_with_sink`](Self::run_profiled_with_sink)).
    /// Per-range profiles combine with [`PhaseProfile::merge`] in
    /// range order, reassembling every span count and cache counter of
    /// the whole-matrix sweep exactly.
    ///
    /// # Errors
    ///
    /// See [`run_with_sink`](Self::run_with_sink).
    pub fn run_range_profiled_with_sink<S: MetricsSink + Send>(
        &self,
        matrix: &ScenarioMatrix,
        range: std::ops::Range<usize>,
        sink: S,
    ) -> Result<(S::Report, PhaseProfile), Error> {
        self.run_range_inner(matrix, range, sink, true)
            .map(|(report, profile)| (report, profile.unwrap_or_default()))
    }

    fn run_range_inner<S: MetricsSink + Send>(
        &self,
        matrix: &ScenarioMatrix,
        range: std::ops::Range<usize>,
        sink: S,
        profiled: bool,
    ) -> Result<(S::Report, Option<PhaseProfile>), Error> {
        // Reject executor tunables that would hang a worker (zero stall
        // budget, NaN wall clock, non-positive legacy charge step) with
        // a typed error before any deployment is built — for the base
        // config and for every budget-axis override of it.
        matrix.executor.validate().map_err(Error::from)?;
        let mut executors: Vec<IntermittentExecutor> = Vec::with_capacity(matrix.budgets.len());
        for budget in &matrix.budgets {
            let mut config = matrix.executor.clone();
            if let Some(nj) = *budget {
                config.energy_budget_nj = Some(nj);
            }
            config.validate().map_err(Error::from)?;
            executors.push(IntermittentExecutor::new(config));
        }
        // Reject malformed fault specs (out-of-range rates, sag factor
        // below 1) up front, then compile each spec's schedule exactly
        // once — like execution plans, fault plans are shared across
        // every scenario, seed and worker of the axis value. The
        // fault-free spec compiles to a disabled plan, which the
        // executor treats as the pre-fault arithmetic bit for bit.
        let mut fault_plans: Vec<FaultPlan> = Vec::with_capacity(matrix.faults.len());
        for spec in &matrix.faults {
            spec.validate().map_err(Error::from)?;
            fault_plans.push(FaultPlan::compile(spec));
        }
        let mut profile = profiled.then(PhaseProfile::new);
        let scenarios = matrix.scenarios_range(range);
        if scenarios.is_empty() {
            return sink.finish().map(|report| (report, profile));
        }

        // One deployment per (workload, board, strategy, seed,
        // integrity scheme), built
        // lazily by the first worker that needs it and kept in a
        // bounded LRU (`cache_entries` deep). Accuracy only depends on
        // the deployment and its data slice, so it is priced at build
        // time, once per resident entry. Builds happen under the cache
        // lock: at most one build per key is ever in flight, so lookup
        // totals stay deterministic at any worker count — and because a
        // rebuild after eviction is a pure function of the scenario,
        // eviction never changes any report.
        let deployments: Mutex<Lru<Arc<DeployState>>> = Mutex::new(Lru::new(self.cache_entries));

        // One execution plan per (workload, board, strategy,
        // integrity scheme), shared across seeds too: the lowered op
        // stream and its costs depend on the model architecture, the
        // cost table and the scheme's checkpoint padding, not on the
        // calibration data, so seed-variant deployments compile
        // bit-identical plans. Plans are tiny relative to deployments
        // and their slot index keys the trace cache, so this store is
        // append-only, not LRU.
        let plans: PlanStore = Mutex::new(Vec::new());

        // One trace slot per (plan, environment, budget, fault) tuple;
        // only deterministic environments ever populate theirs. Budget
        // and fault schedule are part of the key because both change
        // the trajectory a recording captures.
        let environments = matrix.environments.len();
        let budgets = matrix.budgets.len();
        let faults = matrix.faults.len();
        let traces: TraceCache = Mutex::new(Lru::new(self.cache_entries));

        // The sink is shared: workers briefly lock it to `open` each
        // scenario's accumulator as they claim it (so at most one
        // accumulator per worker is live — a fixed-size sink keeps the
        // whole sweep O(1)), and the coordinator locks it to `merge`
        // completed accumulators in matrix order.
        let sink = Mutex::new(sink);

        // Per-worker profiles (trace-cache counters plus every span a
        // worker times), merged into the coordinator's profile in
        // worker-index order after the sweep — timings are wall-clock
        // and thus never deterministic, but the merge order is.
        let worker_profiles: Mutex<Vec<(usize, PhaseProfile)>> = Mutex::new(Vec::new());

        let cursor = AtomicUsize::new(0);
        // The merge frontier (scenarios merged so far), mirrored into an
        // atomic so workers can apply backpressure: nobody claims a
        // scenario more than `window` ahead of it, which caps the
        // coordinator's reorder buffer even when one early scenario is
        // far slower than the rest.
        let merged = AtomicUsize::new(0);
        let window = 4 * self.workers.min(scenarios.len()) + 16;
        let total = scenarios.len();
        let (tx, rx) = mpsc::channel::<(usize, Result<S::Partial, Error>)>();

        // Lowest-indexed scenario failure and first sink failure, kept
        // separate so the error we return is deterministic.
        let mut run_error: Option<(usize, Error)> = None;
        let mut sink_error: Option<Error> = None;

        std::thread::scope(|scope| {
            let scenarios = &scenarios;
            let deployments = &deployments;
            let plans = &plans;
            let traces = &traces;
            let executors = &executors;
            let fault_plans = &fault_plans;
            let cursor = &cursor;
            let merged = &merged;
            let sink = &sink;
            let worker_profiles = &worker_profiles;
            for w in 0..self.workers.min(total) {
                let tx = tx.clone();
                scope.spawn(move || {
                    let mut local = profiled.then(PhaseProfile::new);
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(scenario) = scenarios.get(i) else {
                            break;
                        };
                        // Backpressure: the worker holding the lowest
                        // in-flight index never waits (everything below it
                        // has been sent, so the frontier reaches it), which
                        // rules out deadlock; everyone else idles on a timed
                        // doze — negligible CPU, and at most a stall-length
                        // wakeup lag — instead of inflating the reorder
                        // buffer.
                        while i >= merged.load(Ordering::Relaxed).saturating_add(window) {
                            std::thread::sleep(std::time::Duration::from_micros(200));
                        }
                        let deploy = {
                            let mut cache = deployments.lock().expect("deployment cache lock");
                            match cache.get(scenario.deployment_key) {
                                Some(entry) => {
                                    if let Some(p) = local.as_mut() {
                                        p.caches.deployment.hits += 1;
                                    }
                                    entry
                                }
                                None => {
                                    // Built while the cache lock is held:
                                    // at most one build per key is ever in
                                    // flight, so every key misses exactly
                                    // once (until evicted) at any worker
                                    // count.
                                    if let Some(p) = local.as_mut() {
                                        p.caches.deployment.misses += 1;
                                    }
                                    match build_deploy_state(
                                        scenario,
                                        matrix,
                                        plans,
                                        local.as_mut(),
                                    ) {
                                        Ok(entry) => cache.insert(scenario.deployment_key, entry),
                                        Err(e) => {
                                            if tx.send((i, Err(e))).is_err() {
                                                break;
                                            }
                                            continue;
                                        }
                                    }
                                }
                            }
                        };
                        let trace_key = (!self.reference && !scenario.environment.is_stochastic())
                            .then(|| {
                                ((deploy.plan_slot * environments + scenario.environment_key)
                                    * budgets
                                    + scenario.budget_key)
                                    * faults
                                    + scenario.fault_key
                            });
                        let mut partial = sink
                            .lock()
                            .expect("sink lock")
                            .open(scenario, deploy.accuracy);
                        let result = if scenario.topology.is_solo() {
                            run_scenario::<S>(
                                scenario,
                                &deploy,
                                trace_key,
                                traces,
                                &executors[scenario.budget_key],
                                &fault_plans[scenario.fault_key],
                                matrix.runs,
                                self.reference,
                                &mut partial,
                                local.as_mut(),
                            )
                        } else {
                            run_world_scenario::<S>(
                                scenario,
                                &deploy,
                                &executors[scenario.budget_key],
                                &fault_plans[scenario.fault_key],
                                matrix.runs,
                                self.reference,
                                &mut partial,
                                local.as_mut(),
                            )
                        };
                        if tx.send((i, result.map(|()| partial))).is_err() {
                            break; // coordinator gone (a sibling panicked)
                        }
                    }
                    if let Some(p) = local {
                        worker_profiles.lock().expect("profile lock").push((w, p));
                    }
                });
            }
            drop(tx);

            // Stream-merge on this thread: absorb each scenario's
            // accumulator the moment the ordered prefix allows, buffering
            // only out-of-order stragglers. Sinks see matrix order; the
            // buffer stays tiny because workers drain the cursor roughly
            // in order.
            let mut pending: BTreeMap<usize, S::Partial> = BTreeMap::new();
            let mut next = 0usize;
            for _ in 0..total {
                let Ok((i, result)) = rx.recv() else {
                    break; // worker panicked; scope join re-raises it
                };
                let failed = run_error.is_some() || sink_error.is_some();
                match result {
                    Ok(partial) if !failed => {
                        pending.insert(i, partial);
                    }
                    // Once anything has failed the sweep's result is
                    // already Err: later accumulators are dropped, not
                    // buffered (dispatch was halted below).
                    Ok(_) => {}
                    Err(e) => {
                        if run_error.as_ref().is_none_or(|(j, _)| i < *j) {
                            run_error = Some((i, e));
                        }
                    }
                }
                while let Some(partial) = pending.remove(&next) {
                    if sink_error.is_none() {
                        let t0 = profiled.then(Instant::now);
                        if let Err(e) = sink.lock().expect("sink lock").merge(partial) {
                            sink_error = Some(e);
                        }
                        if let (Some(p), Some(t0)) = (profile.as_mut(), t0) {
                            p.record(ExecPhase::SinkFold, t0.elapsed().as_secs_f64());
                        }
                    }
                    next += 1;
                    merged.store(next, Ordering::Relaxed);
                }
                if run_error.is_some() || sink_error.is_some() {
                    // Halt dispatch (in-flight scenarios still drain
                    // through the channel), release any backpressured
                    // worker, and drop the unmergeable suffix.
                    cursor.store(total, Ordering::Relaxed);
                    merged.store(total, Ordering::Relaxed);
                    pending.clear();
                }
            }
        });

        if let Some((_, e)) = run_error {
            return Err(e);
        }
        if let Some(e) = sink_error {
            return Err(e);
        }
        if let Some(p) = profile.as_mut() {
            let mut collected = worker_profiles.into_inner().expect("profile lock");
            collected.sort_by_key(|&(w, _)| w);
            for (_, worker) in &collected {
                p.merge(worker);
            }
            // Residency and eviction counts live in the shared caches,
            // not in any worker's local profile.
            let deployment_cache = deployments.into_inner().expect("deployment cache lock");
            p.caches.deployment.entries = deployment_cache.len() as u64;
            p.caches.deployment.evictions = deployment_cache.evictions();
            p.caches.plan.entries = plans.into_inner().expect("plan cache lock").len() as u64;
            let trace_cache = traces.into_inner().expect("trace cache lock");
            p.caches.trace.entries = trace_cache.len() as u64;
            p.caches.trace.evictions = trace_cache.evictions();
        }
        sink.into_inner()
            .expect("sink lock")
            .finish()
            .map(|report| (report, profile))
    }
}

/// Configures a [`FleetRunner`] together with the [`MetricsSink`] a
/// sweep folds into. Created by [`FleetRunner::builder`]; swapping the
/// sink retypes the builder, so [`run`](Self::run) returns whatever
/// that sink reports.
#[derive(Debug)]
pub struct FleetBuilder<S: MetricsSink> {
    workers: usize,
    reference: bool,
    cache_entries: usize,
    sink: S,
}

impl<S: MetricsSink> FleetBuilder<S> {
    /// Sets the worker-pool size (clamped to ≥ 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Routes runs through the op-by-op reference interpreter (see
    /// [`FleetRunner::reference_executor`]).
    pub fn reference_executor(mut self, reference: bool) -> Self {
        self.reference = reference;
        self
    }

    /// Bounds the runner's deployment and trace caches to at most
    /// `entries` resident entries each (clamped to ≥ 1; default 1024).
    /// Evicted entries are rebuilt deterministically on the next miss,
    /// so a tighter cap trades wall-clock for memory without changing
    /// any report bit. Evictions are counted in the profiled sweep's
    /// [`CacheCounters`](crate::CacheCounters).
    pub fn cache_entries(mut self, entries: usize) -> Self {
        self.cache_entries = entries.max(1);
        self
    }

    /// Replaces the sink, retyping the builder.
    pub fn sink<T: MetricsSink>(self, sink: T) -> FleetBuilder<T> {
        FleetBuilder {
            workers: self.workers,
            reference: self.reference,
            cache_entries: self.cache_entries,
            sink,
        }
    }

    /// Sweeps the matrix into the configured sink.
    ///
    /// # Errors
    ///
    /// See [`FleetRunner::run_with_sink`].
    pub fn run(self, matrix: &ScenarioMatrix) -> Result<S::Report, Error>
    where
        S: Send,
    {
        FleetRunner {
            workers: self.workers,
            reference: self.reference,
            cache_entries: self.cache_entries,
        }
        .run_with_sink(matrix, self.sink)
    }

    /// Sweeps the matrix into the configured sink with phase profiling
    /// (see [`FleetRunner::run_profiled_with_sink`]): same report, plus
    /// a [`PhaseProfile`] of where the wall-clock time went.
    ///
    /// # Errors
    ///
    /// See [`FleetRunner::run_with_sink`].
    pub fn run_profiled(self, matrix: &ScenarioMatrix) -> Result<(S::Report, PhaseProfile), Error>
    where
        S: Send,
    {
        FleetRunner {
            workers: self.workers,
            reference: self.reference,
            cache_entries: self.cache_entries,
        }
        .run_profiled_with_sink(matrix, self.sink)
    }
}

impl FleetBuilder<FullReportSink> {
    /// Finishes into a reusable [`FleetRunner`] (full-report sweeps
    /// only; sinks are consumed per sweep, so sink-typed builders run
    /// directly).
    pub fn build(self) -> FleetRunner {
        FleetRunner {
            workers: self.workers,
            reference: self.reference,
            cache_entries: self.cache_entries,
        }
    }
}

/// Builds everything one deployment key needs: the deployment, its
/// priced accuracy, and the shared execution plan — compiled on first
/// demand, reused from the append-only plan store otherwise. A pure
/// function of the scenario (and the matrix's calibration), which is
/// what lets the bounded deployment cache rebuild evicted entries
/// without changing any report.
fn build_deploy_state(
    scenario: &Scenario,
    matrix: &ScenarioMatrix,
    plans: &PlanStore,
    mut profile: Option<&mut PhaseProfile>,
) -> Result<Arc<DeployState>, Error> {
    let data = scenario.workload.dataset(scenario.seed);
    let mut model = scenario.workload.model();
    let deployment = Deployment::builder(&mut model, &data)
        .calibration(matrix.calibration)
        .board(scenario.board.clone())
        .strategy(scenario.strategy)
        .build()?;
    let accuracy = quantized_accuracy(deployment.quantized(), &data)?;
    let key = (
        scenario.workload,
        scenario.board.clone(),
        scenario.strategy,
        scenario.integrity,
    );
    let mut plans = plans.lock().expect("plan cache lock");
    let (plan_slot, plan) = match plans.iter().position(|(k, _)| *k == key) {
        Some(slot) => {
            if let Some(p) = profile.as_deref_mut() {
                p.caches.plan.hits += 1;
            }
            (slot, Arc::clone(&plans[slot].1))
        }
        None => {
            if let Some(p) = profile {
                p.caches.plan.misses += 1;
            }
            let plan = Arc::new(deployment.compile_plan_with_integrity(scenario.integrity));
            plans.push((key, Arc::clone(&plan)));
            (plans.len() - 1, plan)
        }
    };
    Ok(Arc::new(DeployState {
        deployment,
        accuracy,
        plan_slot,
        plan,
    }))
}

/// Runs one scenario on its shared deployment and shared execution
/// plan: `runs` intermittent inferences with per-run re-seeding, each
/// folded into the sink accumulator as a [`RunRecord`] in run order
/// (accuracy was priced once per deployment by the runner). Every run
/// consults the scenario's compiled [`FaultPlan`] — the fault-free
/// axis value compiles to a disabled plan, which executes the exact
/// pre-fault arithmetic. In `reference` mode the session compiles its
/// own plan and replays the op-by-op interpreter instead — the
/// pre-plan behavior parity suites compare against.
#[allow(clippy::too_many_arguments)]
fn run_scenario<S: MetricsSink>(
    scenario: &Scenario,
    deploy: &DeployState,
    trace_key: Option<usize>,
    traces: &TraceCache,
    executor: &IntermittentExecutor,
    fault: &FaultPlan,
    runs: u32,
    reference: bool,
    partial: &mut S::Partial,
    mut profile: Option<&mut PhaseProfile>,
) -> Result<(), Error> {
    let mut session = if reference {
        // Reference mode compiles its own fresh plan per scenario, at
        // the scenario's integrity scheme so the reference interpreter
        // prices and recovers identically to the planned path.
        deploy.deployment.session_with_plan(Arc::new(
            deploy
                .deployment
                .compile_plan_with_integrity(scenario.integrity),
        ))
    } else {
        deploy
            .deployment
            .session_with_plan(Arc::clone(&deploy.plan))
    };

    for run in 0..u64::from(runs) {
        let r = if let Some(key) = trace_key {
            // Deterministic environment: every (seed, run) replays the
            // one trajectory this (plan, environment, budget, fault)
            // tuple can take. Record it on first demand, replay it ever
            // after — replays re-apply the same per-op meter records
            // (fault effects included), so they are bit-identical to
            // live runs on this session's board.
            let existing = traces.lock().expect("trace cache lock").get(key);
            match existing {
                Some(recorded) => {
                    let t0 = profile.is_some().then(Instant::now);
                    let r = session.infer_intermittent_replay(executor, &recorded);
                    if let (Some(p), Some(t0)) = (profile.as_deref_mut(), t0) {
                        p.caches.trace.hits += 1;
                        p.record(ExecPhase::TraceReplay, t0.elapsed().as_secs_f64());
                    }
                    r
                }
                None => {
                    // The recording run *is* this run — it executes live
                    // on this session's board with the lock released, so
                    // workers needing the same tuple never idle. Racing
                    // recorders duplicate only this one run (every
                    // recording of a deterministic tuple is
                    // bit-identical, so whichever lands first is equally
                    // valid — the LRU keeps the first insert).
                    let mut supply = scenario.environment.supply();
                    let (report, recorded) = if let Some(p) = profile.as_deref_mut() {
                        let t0 = Instant::now();
                        let out = session.infer_intermittent_faulted_traced_probed(
                            executor,
                            &mut supply,
                            fault,
                            p,
                        );
                        p.caches.trace.misses += 1;
                        p.record(ExecPhase::PlanExec, t0.elapsed().as_secs_f64());
                        out
                    } else {
                        session.infer_intermittent_faulted_traced(executor, &mut supply, fault)
                    };
                    traces
                        .lock()
                        .expect("trace cache lock")
                        .insert(key, Arc::new(recorded));
                    report
                }
            }
        } else {
            // Stochastic environments get a fresh, reproducible seed per
            // run (the reference path reseeds deterministic ones too —
            // a no-op replay of the same waveform).
            let env = scenario.environment.reseeded(mix(scenario.seed, run));
            let mut supply = env.supply();
            if let Some(p) = profile.as_deref_mut() {
                let t0 = Instant::now();
                let r = if reference {
                    session.infer_intermittent_faulted_reference_probed(
                        executor,
                        &mut supply,
                        fault,
                        p,
                    )
                } else {
                    session.infer_intermittent_faulted_probed(executor, &mut supply, fault, p)
                };
                p.record(ExecPhase::PlanExec, t0.elapsed().as_secs_f64());
                r
            } else if reference {
                session.infer_intermittent_faulted_reference(executor, &mut supply, fault)
            } else {
                session.infer_intermittent_faulted(executor, &mut supply, fault)
            }
        };
        let record = RunRecord {
            scenario,
            run: run as u32,
            accuracy: deploy.accuracy,
            report: &r,
        };
        let t0 = profile.is_some().then(Instant::now);
        S::fold(partial, &record);
        if let (Some(p), Some(t0)) = (profile.as_deref_mut(), t0) {
            p.record(ExecPhase::SinkFold, t0.elapsed().as_secs_f64());
        }
    }
    Ok(())
}

/// Runs one networked scenario: every device of the topology executes
/// `runs` intermittent inferences on the scenario's shared deployment
/// and execution plan, each under its [`SharedField`] share of the
/// harvest field, while a [`TimelineRecorder`] probe captures the
/// device's dark intervals and completion times. The assembled
/// [`WorldSim`] then resolves the gateway's polling schedule into one
/// `SloOutcome`, folded via [`MetricsSink::fold_slo`].
///
/// Devices advance strictly in id order and never interact mid-run —
/// the field is allocated up front and the gateway only observes
/// recorded timelines — so the result is a pure function of the
/// scenario at any worker count. Device 0 keeps the scenario seed
/// (which is what makes a single-device topology reproduce the solo
/// executor's records bit for bit); higher ids salt it so no two
/// devices replay the same stochastic waveform.
#[allow(clippy::too_many_arguments)]
fn run_world_scenario<S: MetricsSink>(
    scenario: &Scenario,
    deploy: &DeployState,
    executor: &IntermittentExecutor,
    fault: &FaultPlan,
    runs: u32,
    reference: bool,
    partial: &mut S::Partial,
    mut profile: Option<&mut PhaseProfile>,
) -> Result<(), Error> {
    let topology = scenario.topology;
    let field = SharedField::for_topology(&topology);
    let mut world = WorldSim::new(topology);
    let mut recorder = TimelineRecorder::new();
    for device in 0..topology.devices {
        let scale = field.scale(device);
        // Scaling by exactly 1.0 is a bitwise identity, but skipping it
        // keeps the single-device fast path obvious.
        let env = if scale == 1.0 {
            scenario.environment.clone()
        } else {
            scenario.environment.scaled(scale)
        };
        let device_seed = scenario
            .seed
            .wrapping_add(u64::from(device).wrapping_mul(0xD1B5_4A32_D192_ED03));
        let mut session = if reference {
            deploy.deployment.session_with_plan(Arc::new(
                deploy
                    .deployment
                    .compile_plan_with_integrity(scenario.integrity),
            ))
        } else {
            deploy
                .deployment
                .session_with_plan(Arc::clone(&deploy.plan))
        };
        let mut timeline = DeviceTimeline::new();
        for run in 0..u64::from(runs) {
            let reseeded;
            let run_env = if env.is_stochastic() {
                reseeded = env.reseeded(mix(device_seed, run));
                &reseeded
            } else {
                &env
            };
            let mut supply = run_env.supply();
            let t0 = profile.is_some().then(Instant::now);
            let r = if reference {
                session.infer_intermittent_faulted_reference_probed(
                    executor,
                    &mut supply,
                    fault,
                    &mut recorder,
                )
            } else {
                session.infer_intermittent_faulted_probed(
                    executor,
                    &mut supply,
                    fault,
                    &mut recorder,
                )
            };
            if let (Some(p), Some(t0)) = (profile.as_deref_mut(), t0) {
                p.record(ExecPhase::PlanExec, t0.elapsed().as_secs_f64());
            }
            timeline.push_run(&recorder.take());
            let record = RunRecord {
                scenario,
                run: device * runs + run as u32,
                accuracy: deploy.accuracy,
                report: &r,
            };
            let t0 = profile.is_some().then(Instant::now);
            S::fold(partial, &record);
            if let (Some(p), Some(t0)) = (profile.as_deref_mut(), t0) {
                p.record(ExecPhase::SinkFold, t0.elapsed().as_secs_f64());
            }
        }
        world.add_device(device, timeline);
    }
    let outcome = world.resolve();
    let t0 = profile.is_some().then(Instant::now);
    S::fold_slo(partial, &outcome);
    if let (Some(p), Some(t0)) = (profile, t0) {
        p.record(ExecPhase::SinkFold, t0.elapsed().as_secs_f64());
    }
    Ok(())
}

/// SplitMix64-style mix of (scenario seed, run index) — the per-run
/// reseed the runner applies to stochastic environments. Public so
/// external harnesses (e.g. the `exec_plan` bench) can replay exactly
/// the supplies a fleet sweep would see.
pub fn mix(seed: u64, run: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(run.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{CsvSink, DigestSink, GroupAxis, GroupBySink, JsonlSink};
    use crate::scenario::Workload;
    use ehdl::ehsim::{catalog, ExecutorConfig};
    use ehdl::Strategy;

    fn quick_executor() -> ExecutorConfig {
        ExecutorConfig {
            stall_outages: 6,
            ..ExecutorConfig::default()
        }
    }

    #[test]
    fn invalid_executor_config_is_rejected_before_the_sweep() {
        let matrix = ScenarioMatrix::new().executor(ExecutorConfig {
            stall_outages: 0,
            ..ExecutorConfig::default()
        });
        let err = FleetRunner::new(2).run(&matrix).unwrap_err();
        assert!(
            matches!(err, ehdl::Error::Config(_)),
            "want a typed config error, got {err}"
        );
        assert!(err.to_string().contains("stall_outages"), "{err}");
        // A NaN wall clock would disable the time limit silently.
        let matrix = ScenarioMatrix::new().executor(ExecutorConfig {
            max_wall_seconds: f64::NAN,
            ..ExecutorConfig::default()
        });
        assert!(FleetRunner::new(1).run(&matrix).is_err());
    }

    #[test]
    fn empty_matrix_yields_empty_report() {
        let matrix = ScenarioMatrix::new().environments(vec![]);
        let report = FleetRunner::new(4).run(&matrix).unwrap();
        assert!(report.is_empty());
        assert_eq!(report.total_runs(), 0);
        let digest = FleetRunner::builder()
            .sink(DigestSink::new())
            .run(&matrix)
            .unwrap();
        assert_eq!(digest.scenarios, 0);
    }

    #[test]
    fn bench_supply_flex_completes_and_reports() {
        let matrix = ScenarioMatrix::new()
            .environments(vec![catalog::bench_supply()])
            .workloads(vec![Workload::Har { samples: 6 }])
            .executor(quick_executor());
        let report = FleetRunner::new(2).run(&matrix).unwrap();
        assert_eq!(report.len(), 1);
        let s = &report.scenarios[0];
        assert_eq!(s.completed_runs, 1);
        assert_eq!(s.outages, 0, "bench supply never browns out");
        assert_eq!(s.latencies_ms.len(), 1);
        assert!(s.latencies_ms[0] > 0.0);
        assert!(s.energy_nj > 0.0);
        assert!((s.forward_progress() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stochastic_runs_vary_but_deterministic_runs_replay() {
        let matrix = ScenarioMatrix::new()
            .environments(vec![catalog::office_rf()])
            .workloads(vec![Workload::Har { samples: 4 }])
            .strategies(vec![Strategy::Sonic])
            .runs(2)
            .executor(quick_executor());
        let a = FleetRunner::new(1).run(&matrix).unwrap();
        let b = FleetRunner::new(1).run(&matrix).unwrap();
        // Reproducible across identical sweeps…
        assert_eq!(a, b);
        // …and the per-run reseeding makes burst runs differ from each
        // other (two identical latencies would mean the reseed is dead).
        let lat = &a.scenarios[0].latencies_ms;
        if lat.len() == 2 {
            assert_ne!(lat[0], lat[1]);
        }
    }

    #[test]
    fn reference_executor_reproduces_the_planned_report() {
        // The plan fast path and the op-by-op interpreter must agree bit
        // for bit over a matrix mixing strategies, environments and
        // seeds (two seeds exercise the cross-seed plan sharing).
        let matrix = ScenarioMatrix::new()
            .environments(vec![catalog::bench_supply(), catalog::piezo_gait()])
            .workloads(vec![Workload::Har { samples: 4 }])
            .strategies(vec![Strategy::Sonic, Strategy::Flex])
            .seeds(vec![0, 3])
            .runs(2)
            .executor(quick_executor());
        let planned = FleetRunner::new(2).run(&matrix).unwrap();
        let reference = FleetRunner::new(2)
            .reference_executor(true)
            .run(&matrix)
            .unwrap();
        assert_eq!(planned, reference);
    }

    #[test]
    fn worker_count_does_not_change_the_report() {
        let matrix = ScenarioMatrix::new()
            .environments(vec![catalog::bench_supply(), catalog::piezo_gait()])
            .workloads(vec![Workload::Har { samples: 4 }])
            .strategies(vec![Strategy::Sonic, Strategy::Flex])
            .executor(quick_executor());
        let one = FleetRunner::new(1).run(&matrix).unwrap();
        let four = FleetRunner::new(4).run(&matrix).unwrap();
        assert_eq!(one, four);
        assert_eq!(one.to_string(), four.to_string());
    }

    #[test]
    fn builder_full_report_matches_run() {
        let matrix = ScenarioMatrix::new()
            .environments(vec![catalog::bench_supply(), catalog::piezo_gait()])
            .workloads(vec![Workload::Har { samples: 4 }])
            .executor(quick_executor());
        let classic = FleetRunner::new(3).run(&matrix).unwrap();
        let built = FleetRunner::builder()
            .workers(3)
            .build()
            .run(&matrix)
            .unwrap();
        assert_eq!(classic, built);
        let sunk = FleetRunner::builder()
            .workers(3)
            .sink(FullReportSink::new())
            .run(&matrix)
            .unwrap();
        assert_eq!(classic, sunk);
    }

    #[test]
    fn digest_sink_agrees_with_the_full_report() {
        let matrix = ScenarioMatrix::new()
            .environments(vec![catalog::bench_supply(), catalog::piezo_gait()])
            .workloads(vec![Workload::Har { samples: 4 }])
            .strategies(vec![Strategy::Sonic, Strategy::Flex])
            .runs(2)
            .executor(quick_executor());
        let full = FleetRunner::new(2).run(&matrix).unwrap();
        let digest = FleetRunner::builder()
            .workers(2)
            .sink(DigestSink::new())
            .run(&matrix)
            .unwrap();
        assert_eq!(digest.scenarios as usize, full.len());
        assert_eq!(digest.runs, full.total_runs());
        assert_eq!(digest.completed_runs, full.completed_runs());
        assert_eq!(digest.outages, full.total_outages());
        assert_eq!(digest.latency_ms.count(), full.completed_runs());
        assert!((digest.total_energy_mj() - full.total_energy_mj()).abs() < 1e-9);
        // Sketched percentiles sit within the documented bound of the
        // exact ones.
        let exact = full.latency_percentile_ms(50.0).unwrap();
        let est = digest.latency_ms.p50().unwrap();
        assert!((est - exact).abs() / exact <= crate::StatsDigest::RELATIVE_ERROR);
    }

    #[test]
    fn grouped_and_row_sinks_cover_every_run() {
        let matrix = ScenarioMatrix::new()
            .environments(vec![catalog::bench_supply(), catalog::piezo_gait()])
            .workloads(vec![Workload::Har { samples: 4 }])
            .strategies(vec![Strategy::Sonic, Strategy::Flex])
            .runs(2)
            .executor(quick_executor());
        let grouped = FleetRunner::builder()
            .workers(2)
            .sink(GroupBySink::new(GroupAxis::Environment))
            .run(&matrix)
            .unwrap();
        assert_eq!(grouped.groups.len(), 2);
        assert_eq!(grouped.groups[0].0, "bench_supply");
        assert_eq!(
            grouped.groups.iter().map(|(_, d)| d.runs).sum::<u64>(),
            matrix.len() as u64 * 2
        );
        let (bytes, rows) = FleetRunner::builder()
            .workers(2)
            .sink(JsonlSink::new(Vec::new()))
            .run(&matrix)
            .unwrap();
        assert_eq!(rows, matrix.len() as u64 * 2);
        assert_eq!(String::from_utf8(bytes).unwrap().lines().count(), 8);
        let (bytes, rows) = FleetRunner::builder()
            .workers(2)
            .sink(CsvSink::new(Vec::new()))
            .run(&matrix)
            .unwrap();
        assert_eq!(rows, 8);
        assert_eq!(String::from_utf8(bytes).unwrap().lines().count(), 9);
    }

    #[test]
    fn profiled_sweep_report_is_bit_identical_and_counts_caches() {
        // 2 envs (one stochastic) × 2 strategies × 2 seeds × 2 runs.
        let matrix = ScenarioMatrix::new()
            .environments(vec![catalog::bench_supply(), catalog::office_rf()])
            .workloads(vec![Workload::Har { samples: 4 }])
            .strategies(vec![Strategy::Sonic, Strategy::Flex])
            .seeds(vec![0, 3])
            .runs(2)
            .executor(quick_executor());
        let plain = FleetRunner::builder()
            .workers(1)
            .sink(DigestSink::new())
            .run(&matrix)
            .unwrap();
        let (profiled, profile) = FleetRunner::builder()
            .workers(1)
            .sink(DigestSink::new())
            .run_profiled(&matrix)
            .unwrap();
        // The profile is a pure side channel.
        assert_eq!(plain, profiled);

        // Deployments: one per (workload, board, strategy, seed) = 4,
        // looked up once per scenario (8).
        assert_eq!(profile.caches.deployment.entries, 4);
        assert_eq!(profile.caches.deployment.misses, 4);
        assert_eq!(profile.caches.deployment.hits, 4);
        // Plans: shared across seeds = 2 entries over 4 lookups.
        assert_eq!(profile.caches.plan.entries, 2);
        assert_eq!(profile.caches.plan.misses, 2);
        assert_eq!(profile.caches.plan.hits, 2);
        // Traces: only the deterministic env records — 2 (plan, env)
        // pairs over 2 seeds × 2 runs = 8 lookups.
        assert_eq!(profile.caches.trace.entries, 2);
        assert_eq!(profile.caches.trace.misses, 2);
        assert_eq!(profile.caches.trace.hits, 6);

        // Every run was timed exactly once: 8 deterministic lookups +
        // 8 stochastic runs.
        assert_eq!(
            profile.plan_exec_s.count() + profile.trace_replay_s.count(),
            16
        );
        // Sink folds: one per run plus one coordinator merge per
        // scenario.
        assert_eq!(profile.sink_fold_s.count(), 16 + 8);
        assert!(profile.total_seconds() > 0.0);

        // At any worker count the report stays identical and cache
        // totals are conserved (the trace hit/miss split may shift).
        let (profiled4, profile4) = FleetRunner::builder()
            .workers(4)
            .sink(DigestSink::new())
            .run_profiled(&matrix)
            .unwrap();
        assert_eq!(plain, profiled4);
        assert_eq!(profile4.caches.deployment, profile.caches.deployment);
        assert_eq!(profile4.caches.plan, profile.caches.plan);
        assert_eq!(
            profile4.caches.trace.lookups(),
            profile.caches.trace.lookups()
        );

        // The profile survives its wire format bit-identically.
        let back = PhaseProfile::from_json(&profile.to_json()).unwrap();
        assert_eq!(back, profile);
    }

    #[test]
    fn range_profiles_merge_to_the_whole_sweep_counts() {
        let matrix = ScenarioMatrix::new()
            .environments(vec![catalog::bench_supply(), catalog::piezo_gait()])
            .workloads(vec![Workload::Har { samples: 4 }])
            .strategies(vec![Strategy::Sonic, Strategy::Flex])
            .executor(quick_executor());
        let runner = FleetRunner::new(1);
        let (_, whole) = runner
            .run_profiled_with_sink(&matrix, DigestSink::new())
            .unwrap();
        let mut merged = PhaseProfile::new();
        let mid = matrix.len() / 2;
        for range in [0..mid, mid..matrix.len()] {
            let (_, part) = runner
                .run_range_profiled_with_sink(&matrix, range, DigestSink::new())
                .unwrap();
            merged.merge(&part);
        }
        // Counters and span counts reassemble exactly: deployment keys
        // are contiguous over contiguous ranges, so this split puts one
        // plan (and its scenarios) wholly in each half.
        assert_eq!(merged.caches.deployment, whole.caches.deployment);
        assert_eq!(merged.caches.plan, whole.caches.plan);
        assert_eq!(merged.caches.trace.lookups(), whole.caches.trace.lookups());
        for phase in ehdl::ehsim::ExecPhase::ALL {
            assert_eq!(
                merged.digest(phase).count(),
                whole.digest(phase).count(),
                "{}",
                phase.name()
            );
        }
    }

    #[test]
    fn energy_budget_aborts_are_counted_by_sinks() {
        let matrix = ScenarioMatrix::new()
            .environments(vec![catalog::bench_supply()])
            .workloads(vec![Workload::Har { samples: 4 }])
            .executor(ExecutorConfig {
                // Far below one accelerated inference (~120 µJ).
                energy_budget_nj: Some(1_000.0),
                ..quick_executor()
            });
        let report = FleetRunner::new(1).run(&matrix).unwrap();
        assert_eq!(report.scenarios[0].completed_runs, 0);
        assert_eq!(report.scenarios[0].energy_limited_runs, 1);
        let digest = FleetRunner::builder()
            .workers(1)
            .sink(DigestSink::new())
            .run(&matrix)
            .unwrap();
        assert_eq!(digest.energy_limited_runs, 1);
        assert_eq!(digest.completed_runs, 0);
    }
}
