//! The streaming telemetry pipeline: run records and mergeable sinks.
//!
//! The fleet runner emits one [`RunRecord`] per (scenario, run) and
//! folds it into a [`MetricsSink`]. Sinks own *what* is retained: the
//! compatibility [`FullReportSink`] rebuilds the classic
//! [`FleetReport`] (every latency sample kept), [`DigestSink`] folds
//! the whole sweep into a fixed-size [`FleetDigest`], [`GroupBySink`]
//! aggregates one digest per axis value, and [`JsonlSink`] /
//! [`CsvSink`] stream rows to a writer for offline analysis.
//!
//! The determinism contract is split across three call sites:
//!
//! 1. [`open`](MetricsSink::open) — once per scenario, inside the
//!    worker that claims it (claim order is racy, so `open` must be a
//!    pure function of its arguments);
//! 2. [`fold`](MetricsSink::fold) — once per run, inside that same
//!    worker, in run order (an associated function, so folding never
//!    touches the sink itself);
//! 3. [`merge`](MetricsSink::merge) — once per scenario, on the
//!    coordinating thread, **in matrix order** regardless of which
//!    worker finished when.
//!
//! Because every fold happens in a fixed order and merges walk the
//! matrix order, a sink's report is a pure function of the matrix:
//! bit-identical at any worker count.

use crate::digest::{QuantileFidelity, StatsDigest};
use crate::report::{FleetReport, ScenarioReport};
use crate::scenario::Scenario;
use core::fmt;
use ehdl::ehsim::{FaultTally, IntegrityTally, RunOutcome, RunReport};
use ehdl::Error;
use ehdl_netsim::SloOutcome;
use std::io::Write;

/// One telemetry event: the facts of a single intermittent run
/// ([`RunReport`]) together with the scenario axes that produced it.
#[derive(Debug, Clone, Copy)]
pub struct RunRecord<'a> {
    /// The scenario this run belongs to (axes, seed, matrix index).
    pub scenario: &'a Scenario,
    /// Run index within the scenario, `0..runs`.
    pub run: u32,
    /// Quantized-model accuracy of the scenario's shared deployment.
    pub accuracy: f64,
    /// Everything the executor measured for this run.
    pub report: &'a RunReport,
}

impl RunRecord<'_> {
    /// End-to-end latency in milliseconds when the run completed.
    pub fn latency_ms(&self) -> Option<f64> {
        self.report.latency_ms()
    }
}

/// A streaming, mergeable metric sink — the fold target of a fleet
/// sweep. See the [module docs](self) for the determinism contract.
pub trait MetricsSink {
    /// Fixed-size per-scenario accumulator, handed to one worker.
    type Partial: Send;
    /// What the sink ultimately produces.
    type Report;

    /// Creates the accumulator for one scenario. Called inside the
    /// worker that claims the scenario (under the runner's sink lock),
    /// just before its first run — so at most one accumulator per
    /// worker is live at a time, which is what keeps fixed-size sinks
    /// O(1) even on 10k+ scenario matrices. Claim order is racy:
    /// implementations must be pure functions of their arguments.
    fn open(&self, scenario: &Scenario, accuracy: f64) -> Self::Partial;

    /// Folds one run into a scenario accumulator. Called inside the
    /// worker that owns the scenario, in run order. An associated
    /// function (no `self`): workers fold without touching the sink.
    fn fold(partial: &mut Self::Partial, record: &RunRecord<'_>);

    /// Folds one networked scenario's gateway-poll outcome into the
    /// accumulator. Called at most once per scenario, after every
    /// [`fold`](MetricsSink::fold) of that scenario and only when the
    /// scenario's topology is networked (solo scenarios never produce
    /// an [`SloOutcome`]). The default is a no-op so run-oriented sinks
    /// (rows, reports) are untouched by the network layer.
    fn fold_slo(_partial: &mut Self::Partial, _outcome: &SloOutcome) {}

    /// Absorbs a completed scenario's accumulator. Called on the
    /// coordinating thread in matrix order — this is where per-worker
    /// results serialize into a deterministic aggregate, and where
    /// streaming sinks may write.
    ///
    /// # Errors
    ///
    /// Streaming sinks surface their I/O failures here.
    fn merge(&mut self, partial: Self::Partial) -> Result<(), Error>;

    /// Finishes the sink after every scenario merged.
    ///
    /// # Errors
    ///
    /// Streaming sinks surface their final flush failures here.
    fn finish(self) -> Result<Self::Report, Error>;
}

/// Two sinks folding the same sweep side by side (e.g. a
/// [`DigestSink`] for the headline plus a [`JsonlSink`] streaming raw
/// rows).
impl<A: MetricsSink, B: MetricsSink> MetricsSink for (A, B) {
    type Partial = (A::Partial, B::Partial);
    type Report = (A::Report, B::Report);

    fn open(&self, scenario: &Scenario, accuracy: f64) -> Self::Partial {
        (
            self.0.open(scenario, accuracy),
            self.1.open(scenario, accuracy),
        )
    }

    fn fold(partial: &mut Self::Partial, record: &RunRecord<'_>) {
        A::fold(&mut partial.0, record);
        B::fold(&mut partial.1, record);
    }

    fn fold_slo(partial: &mut Self::Partial, outcome: &SloOutcome) {
        A::fold_slo(&mut partial.0, outcome);
        B::fold_slo(&mut partial.1, outcome);
    }

    fn merge(&mut self, partial: Self::Partial) -> Result<(), Error> {
        self.0.merge(partial.0)?;
        self.1.merge(partial.1)
    }

    fn finish(self) -> Result<Self::Report, Error> {
        Ok((self.0.finish()?, self.1.finish()?))
    }
}

// ---------------------------------------------------------------- full

/// The compatibility sink: retains every [`ScenarioReport`] (including
/// each completed run's latency sample) and reproduces the classic
/// [`FleetReport`] exactly. Memory grows with the matrix — prefer
/// [`DigestSink`] for 10k+ scenario sweeps.
#[derive(Debug, Default)]
pub struct FullReportSink {
    scenarios: Vec<ScenarioReport>,
}

impl FullReportSink {
    /// An empty full-report sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl MetricsSink for FullReportSink {
    type Partial = ScenarioReport;
    type Report = FleetReport;

    fn open(&self, scenario: &Scenario, accuracy: f64) -> ScenarioReport {
        ScenarioReport {
            name: scenario.name(),
            workload: scenario.workload.name(),
            environment: scenario.environment.name().to_string(),
            strategy: scenario.strategy,
            board: scenario.board.name(),
            seed: scenario.seed,
            accuracy,
            runs: 0,
            completed_runs: 0,
            energy_limited_runs: 0,
            outages: 0,
            restores: 0,
            ondemand_checkpoints: 0,
            executed_ops: 0,
            wasted_ops: 0,
            energy_nj: 0.0,
            active_seconds: 0.0,
            charging_seconds: 0.0,
            latencies_ms: Vec::new(),
            resilience: ResilienceTally::default(),
            integrity: IntegrityTally::default(),
        }
    }

    fn fold(partial: &mut ScenarioReport, record: &RunRecord<'_>) {
        let r = record.report;
        partial.runs += 1;
        partial.outages += r.outages;
        partial.restores += r.restores;
        partial.ondemand_checkpoints += r.ondemand_checkpoints;
        partial.executed_ops += r.executed_ops;
        partial.wasted_ops += r.wasted_ops;
        partial.energy_nj += r.energy.nanojoules();
        partial.active_seconds += r.active_seconds;
        partial.charging_seconds += r.charging_seconds;
        if r.outcome == RunOutcome::EnergyLimit {
            partial.energy_limited_runs += 1;
        }
        partial.resilience.fold_run(r);
        partial.integrity.merge(&r.integrity);
        if let Some(ms) = r.latency_ms() {
            partial.completed_runs += 1;
            partial.latencies_ms.push(ms);
        }
    }

    fn merge(&mut self, mut partial: ScenarioReport) -> Result<(), Error> {
        partial.latencies_ms.sort_by(f64::total_cmp);
        self.scenarios.push(partial);
        Ok(())
    }

    fn finish(self) -> Result<FleetReport, Error> {
        Ok(FleetReport {
            scenarios: self.scenarios,
        })
    }
}

// -------------------------------------------------------------- digest

/// The fixed-size summary of a whole sweep: exact counters plus
/// [`StatsDigest`] sketches for latency (one sample per completed run)
/// and accuracy (one sample per scenario). Mergeable — two digests from
/// disjoint scenario ranges combine with [`FleetDigest::merge`], which
/// is what makes per-worker (and, next, per-shard) partial results
/// composable.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FleetDigest {
    /// Scenarios folded.
    pub scenarios: u64,
    /// Intermittent runs attempted.
    pub runs: u64,
    /// Runs whose inference finished.
    pub completed_runs: u64,
    /// Runs declared ✗ (stalled without progress).
    pub no_progress_runs: u64,
    /// Runs that hit the outage budget.
    pub outage_limited_runs: u64,
    /// Runs that hit the wall-clock budget.
    pub time_limited_runs: u64,
    /// Runs that hit the per-run energy budget.
    pub energy_limited_runs: u64,
    /// Power failures across all runs.
    pub outages: u64,
    /// Restores performed after outages.
    pub restores: u64,
    /// On-demand checkpoints taken.
    pub ondemand_checkpoints: u64,
    /// Ops executed, including re-execution after rollbacks.
    pub executed_ops: u64,
    /// Ops whose work was lost to rollbacks.
    pub wasted_ops: u64,
    /// Total energy drawn from the capacitor, in nanojoules.
    pub energy_nj: f64,
    /// Seconds spent computing.
    pub active_seconds: f64,
    /// Seconds spent dark, charging.
    pub charging_seconds: f64,
    /// Completed-run latency sketch, in milliseconds.
    pub latency_ms: StatsDigest,
    /// Per-scenario deployment accuracy sketch.
    pub accuracy: StatsDigest,
    /// Per-run dark (charging) time sketch, in seconds — one sample per
    /// run, whatever its outcome. `charging_seconds` holds the exact
    /// total; this sketch adds the distribution, so budget sweeps can
    /// chart charging-vs-compute time per strategy or environment.
    pub dark_s: StatsDigest,
    /// Fault-injection resilience counters, folded from each run's
    /// [`FaultTally`]. All-zero on fault-free sweeps.
    pub resilience: ResilienceTally,
    /// Gateway service-level counters, folded from each networked
    /// scenario's [`SloOutcome`]. Empty on solo-topology sweeps.
    pub slo: SloTally,
    /// Checkpoint-payload integrity counters, folded from each run's
    /// [`IntegrityTally`]. All-zero unless bit-flips were armed or a
    /// non-`None` integrity scheme ran.
    pub integrity: IntegrityTally,
}

/// Fleet-wide gateway service-level tally: how many polls the fleet's
/// devices answered, how the misses split between asleep and stale,
/// and a mergeable sketch of served-result staleness. Folded once per
/// networked scenario from its [`SloOutcome`]; solo scenarios
/// contribute nothing. Merged field-wise, so it composes across
/// workers and shards exactly like the rest of [`FleetDigest`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SloTally {
    /// Networked scenarios (simulated worlds) folded.
    pub worlds: u64,
    /// Device slots across those worlds.
    pub devices: u64,
    /// Gateway polls issued.
    pub polls: u64,
    /// Polls answered with a fresh result.
    pub served: u64,
    /// Polls that found the target device dark (charging).
    pub missed_asleep: u64,
    /// Polls that found the device awake but its newest result older
    /// than the freshness window (or no result at all).
    pub missed_stale: u64,
    /// Devices that answered zero polls in their world — the fleet's
    /// starvation count under the shared harvest field.
    pub starved_devices: u64,
    /// Staleness of each served result, in seconds (poll time minus
    /// the served inference's completion time).
    pub staleness_s: StatsDigest,
}

impl SloTally {
    /// Merges `other` into `self` (field-wise sums; sketches merge).
    pub fn merge(&mut self, other: &SloTally) {
        self.worlds += other.worlds;
        self.devices += other.devices;
        self.polls += other.polls;
        self.served += other.served;
        self.missed_asleep += other.missed_asleep;
        self.missed_stale += other.missed_stale;
        self.starved_devices += other.starved_devices;
        self.staleness_s.merge(&other.staleness_s);
    }

    /// Folds one networked scenario's gateway outcome.
    pub(crate) fn fold_outcome(&mut self, outcome: &SloOutcome) {
        self.worlds += 1;
        self.devices += u64::from(outcome.devices);
        self.polls += outcome.polls;
        self.served += outcome.served;
        self.missed_asleep += outcome.missed_asleep;
        self.missed_stale += outcome.missed_stale;
        self.starved_devices += outcome.starved_devices;
        for &s in &outcome.staleness_s {
            self.staleness_s.record(s);
        }
    }

    /// Fraction of polls served fresh (0.0 when no polls).
    pub fn served_fraction(&self) -> f64 {
        if self.polls == 0 {
            0.0
        } else {
            self.served as f64 / self.polls as f64
        }
    }
}

/// Fleet-wide resilience counters for fault-injected sweeps: how many
/// runs saw injected faults, how many of those still completed, and the
/// per-kind injection totals. Folded from each run's [`FaultTally`] and
/// merged by field-wise sum, so it composes across workers and shards
/// exactly like the rest of [`FleetDigest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResilienceTally {
    /// Runs with at least one injected fault.
    pub faulted_runs: u64,
    /// Faulted runs that nevertheless completed inference.
    pub recovered_runs: u64,
    /// Spurious mid-compute resets injected.
    pub spurious_resets: u64,
    /// Checkpoint commits torn by mid-commit power loss.
    pub torn_commits: u64,
    /// Ops executed under injected voltage sag.
    pub sag_ops: u64,
    /// Restores that found the newest checkpoint slot corrupted.
    pub corrupt_restores: u64,
    /// Corrupt restores that fell all the way back to a cold boot.
    pub cold_boots: u64,
    /// Corruptions the restore path detected (and recovered from).
    pub detected_corruptions: u64,
    /// Corruptions that went undetected — always zero under the
    /// double-buffered checkpoint audit; a nonzero value is a
    /// crash-consistency bug.
    pub silent_corruptions: u64,
}

impl ResilienceTally {
    /// Merges `other` into `self` (field-wise sums).
    pub fn merge(&mut self, other: &ResilienceTally) {
        self.faulted_runs += other.faulted_runs;
        self.recovered_runs += other.recovered_runs;
        self.spurious_resets += other.spurious_resets;
        self.torn_commits += other.torn_commits;
        self.sag_ops += other.sag_ops;
        self.corrupt_restores += other.corrupt_restores;
        self.cold_boots += other.cold_boots;
        self.detected_corruptions += other.detected_corruptions;
        self.silent_corruptions += other.silent_corruptions;
    }

    /// Folds one run's fault tally and outcome.
    pub(crate) fn fold_run(&mut self, report: &RunReport) {
        let t: &FaultTally = &report.faults;
        if t.injected() > 0 {
            self.faulted_runs += 1;
            if report.outcome == RunOutcome::Completed {
                self.recovered_runs += 1;
            }
        }
        self.spurious_resets += t.spurious_resets;
        self.torn_commits += t.torn_commits;
        self.sag_ops += t.sag_ops;
        self.corrupt_restores += t.corrupt_restores;
        self.cold_boots += t.cold_boots;
        self.detected_corruptions += t.detected_corruptions;
        self.silent_corruptions += t.silent_corruptions;
    }

    /// Fraction of faulted runs that completed anyway (1.0 when no run
    /// was faulted — an unfaulted fleet is trivially resilient).
    pub fn recovery_rate(&self) -> f64 {
        if self.faulted_runs == 0 {
            1.0
        } else {
            self.recovered_runs as f64 / self.faulted_runs as f64
        }
    }
}

impl FleetDigest {
    /// An empty digest.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges `other` into `self`. Merge in a fixed order (the fleet
    /// runner uses matrix order) for bit-identical floating-point sums.
    pub fn merge(&mut self, other: &FleetDigest) {
        self.scenarios += other.scenarios;
        self.runs += other.runs;
        self.completed_runs += other.completed_runs;
        self.no_progress_runs += other.no_progress_runs;
        self.outage_limited_runs += other.outage_limited_runs;
        self.time_limited_runs += other.time_limited_runs;
        self.energy_limited_runs += other.energy_limited_runs;
        self.outages += other.outages;
        self.restores += other.restores;
        self.ondemand_checkpoints += other.ondemand_checkpoints;
        self.executed_ops += other.executed_ops;
        self.wasted_ops += other.wasted_ops;
        self.energy_nj += other.energy_nj;
        self.active_seconds += other.active_seconds;
        self.charging_seconds += other.charging_seconds;
        self.latency_ms.merge(&other.latency_ms);
        self.accuracy.merge(&other.accuracy);
        self.dark_s.merge(&other.dark_s);
        self.resilience.merge(&other.resilience);
        self.slo.merge(&other.slo);
        self.integrity.merge(&other.integrity);
    }

    /// Folds one run's facts (shared by [`DigestSink`], [`GroupBySink`]
    /// and the shard worker's record sink).
    pub(crate) fn fold_run(&mut self, record: &RunRecord<'_>) {
        let r = record.report;
        self.runs += 1;
        match r.outcome {
            RunOutcome::Completed => self.completed_runs += 1,
            RunOutcome::NoProgress => self.no_progress_runs += 1,
            RunOutcome::OutageLimit => self.outage_limited_runs += 1,
            RunOutcome::TimeLimit => self.time_limited_runs += 1,
            RunOutcome::EnergyLimit => self.energy_limited_runs += 1,
        }
        self.outages += r.outages;
        self.restores += r.restores;
        self.ondemand_checkpoints += r.ondemand_checkpoints;
        self.executed_ops += r.executed_ops;
        self.wasted_ops += r.wasted_ops;
        self.energy_nj += r.energy.nanojoules();
        self.active_seconds += r.active_seconds;
        self.charging_seconds += r.charging_seconds;
        self.dark_s.record(r.charging_seconds);
        self.resilience.fold_run(r);
        self.integrity.merge(&r.integrity);
        if let Some(ms) = r.latency_ms() {
            self.latency_ms.record(ms);
        }
    }

    /// Fraction of runs that completed (0.0 when no runs).
    pub fn completion_rate(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.completed_runs as f64 / self.runs as f64
        }
    }

    /// Forward progress: fraction of executed ops not rolled back (1.0
    /// when nothing executed).
    pub fn forward_progress(&self) -> f64 {
        if self.executed_ops == 0 {
            1.0
        } else {
            (self.executed_ops - self.wasted_ops) as f64 / self.executed_ops as f64
        }
    }

    /// Total energy drawn across the fleet, in millijoules.
    pub fn total_energy_mj(&self) -> f64 {
        self.energy_nj * 1e-6
    }

    /// Mean scenario accuracy (`None` on an empty digest).
    pub fn mean_accuracy(&self) -> Option<f64> {
        self.accuracy.mean()
    }

    /// The latency sketch's quantile resolution — which histogram bins
    /// back p50/p90/p99. [`DigestSink::finish`] consults this so the
    /// rendered report can flag a collapsed tail (`p90 == p99`) instead
    /// of letting it read like a measurement.
    pub fn latency_fidelity(&self) -> QuantileFidelity {
        self.latency_ms.quantile_fidelity()
    }

    /// The staleness sketch's quantile resolution — the gateway-side
    /// twin of [`latency_fidelity`](Self::latency_fidelity), consulted
    /// by the rendered report so a collapsed staleness tail is flagged
    /// instead of reading like a measurement.
    pub fn staleness_fidelity(&self) -> QuantileFidelity {
        self.slo.staleness_s.quantile_fidelity()
    }

    /// The digest as canonical single-line JSON — the shard wire
    /// encoding, floats carried as bit-exact hex. Two digests serialize
    /// to identical bytes iff they are equal, so the string (or a hash
    /// of it) doubles as a determinism checksum for bench harnesses and
    /// CI smoke jobs.
    pub fn to_json(&self) -> String {
        crate::wire::digest_json(self)
    }

    /// Rebuilds a digest from [`to_json`](Self::to_json)'s output —
    /// bit-identical, sketches included.
    ///
    /// # Errors
    ///
    /// Describes the first syntax or schema error.
    pub fn from_json(text: &str) -> Result<FleetDigest, String> {
        crate::wire::digest_from(&crate::wire::Json::parse(text)?)
    }

    /// Bytes this digest retains — a constant, however many scenarios
    /// were folded (the O(1)-memory claim, measurable).
    pub fn memory_bytes(&self) -> usize {
        core::mem::size_of::<Self>() - 4 * core::mem::size_of::<StatsDigest>()
            + self.latency_ms.memory_bytes()
            + self.accuracy.memory_bytes()
            + self.dark_s.memory_bytes()
            + self.slo.staleness_s.memory_bytes()
    }
}

impl fmt::Display for FleetDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "== fleet digest: {} scenarios, {}/{} runs completed, {} outages, {:.3} mJ ==",
            self.scenarios,
            self.completed_runs,
            self.runs,
            self.outages,
            self.total_energy_mj()
        )?;
        writeln!(
            f,
            "outcomes: {} completed, {} no-progress, {} outage-limit, {} time-limit, {} energy-limit",
            self.completed_runs,
            self.no_progress_runs,
            self.outage_limited_runs,
            self.time_limited_runs,
            self.energy_limited_runs
        )?;
        writeln!(
            f,
            "accuracy: mean {:.1}%   forward progress: {:.1}%",
            self.mean_accuracy().unwrap_or(0.0) * 100.0,
            self.forward_progress() * 100.0
        )?;
        writeln!(
            f,
            "latency: p50 {:.2} ms, p90 {:.2} ms, p99 {:.2} ms over {} completed runs",
            self.latency_ms.p50().unwrap_or(0.0),
            self.latency_ms.p90().unwrap_or(0.0),
            self.latency_ms.p99().unwrap_or(0.0),
            self.latency_ms.count()
        )?;
        writeln!(
            f,
            "dark time: {:.3} s total (p50 {:.4} s, p99 {:.4} s per run) vs {:.3} s active",
            self.charging_seconds,
            self.dark_s.p50().unwrap_or(0.0),
            self.dark_s.p99().unwrap_or(0.0),
            self.active_seconds
        )?;
        let r = &self.resilience;
        if r.faulted_runs > 0 {
            writeln!(
                f,
                "resilience: {}/{} faulted runs recovered ({:.1}%), {} resets, \
                 {} torn commits, {} sag ops, {} corrupt restores ({} cold boots), \
                 {} detected / {} silent corruptions",
                r.recovered_runs,
                r.faulted_runs,
                r.recovery_rate() * 100.0,
                r.spurious_resets,
                r.torn_commits,
                r.sag_ops,
                r.corrupt_restores,
                r.cold_boots,
                r.detected_corruptions,
                r.silent_corruptions
            )?;
        }
        let s = &self.slo;
        if s.polls > 0 {
            writeln!(
                f,
                "gateway: {}/{} polls served ({:.1}%), {} asleep, {} stale, \
                 staleness p50 {:.3} s / p99 {:.3} s, {} starved of {} devices",
                s.served,
                s.polls,
                s.served_fraction() * 100.0,
                s.missed_asleep,
                s.missed_stale,
                s.staleness_s.p50().unwrap_or(0.0),
                s.staleness_s.p99().unwrap_or(0.0),
                s.starved_devices,
                s.devices
            )?;
        }
        let i = &self.integrity;
        if !i.is_empty() {
            writeln!(
                f,
                "integrity: {} flips injected, {} repaired, {} detected, \
                 {} silent restores, ladder [{} {} {} {}], wear max {} commits",
                i.flips_injected,
                i.flips_repaired,
                i.flips_detected,
                i.silent_restores,
                i.ladder[0],
                i.ladder[1],
                i.ladder[2],
                i.ladder[3],
                i.wear_max_commits
            )?;
        }
        if self.latency_fidelity().tail_collapsed() {
            writeln!(
                f,
                "warning: latency p90 and p99 share one histogram bin \
                 (tail clustered tighter than ~4.08%); treat them as one estimate"
            )?;
        }
        if self.slo.polls > 0 && self.staleness_fidelity().tail_collapsed() {
            writeln!(
                f,
                "warning: staleness p90 and p99 share one histogram bin \
                 (tail clustered tighter than ~4.08%); treat them as one estimate"
            )?;
        }
        Ok(())
    }
}

/// Folds the whole sweep into one [`FleetDigest`]: O(1) memory no
/// matter how many scenarios run, at the price of sketched (±2%)
/// latency percentiles. The streaming replacement for
/// [`FullReportSink`] on 10k+ scenario matrices.
///
/// The finished digest audits its own latency sketch: its rendered
/// report consults [`FleetDigest::latency_fidelity`] and appends a
/// one-line warning when the histogram tail collapses (`p90 == p99`
/// backed by a single bin), so a sketch artifact never reads like a
/// measurement.
#[derive(Debug, Default)]
pub struct DigestSink {
    digest: FleetDigest,
}

impl DigestSink {
    /// An empty digest sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl MetricsSink for DigestSink {
    type Partial = FleetDigest;
    type Report = FleetDigest;

    fn open(&self, _scenario: &Scenario, accuracy: f64) -> FleetDigest {
        let mut partial = FleetDigest::new();
        partial.scenarios = 1;
        partial.accuracy.record(accuracy);
        partial
    }

    fn fold(partial: &mut FleetDigest, record: &RunRecord<'_>) {
        partial.fold_run(record);
    }

    fn fold_slo(partial: &mut FleetDigest, outcome: &SloOutcome) {
        partial.slo.fold_outcome(outcome);
    }

    fn merge(&mut self, partial: FleetDigest) -> Result<(), Error> {
        self.digest.merge(&partial);
        Ok(())
    }

    fn finish(self) -> Result<FleetDigest, Error> {
        Ok(self.digest)
    }
}

// ------------------------------------------------------------- groupby

/// Which scenario axis a [`GroupBySink`] groups on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupAxis {
    /// Group by environment name.
    Environment,
    /// Group by checkpoint strategy.
    Strategy,
    /// Group by board name.
    Board,
    /// Group by workload name.
    Workload,
    /// Group by the per-run energy budget — one digest per budget axis
    /// value, which is exactly a completion-vs-joule frontier (plot
    /// each group's completion rate against its budget).
    EnergyBudget,
    /// Group by fault-injection schedule — one digest per
    /// [`FaultSpec`](crate::FaultSpec) label, which puts the fault-free
    /// baseline next to each fault profile (compare recovery rate and
    /// wasted work per schedule).
    Fault,
    /// Group by network topology label — one digest per
    /// [`NetworkTopology`](crate::NetworkTopology) axis value, which
    /// puts the solo baseline next to each fleet layout (compare
    /// completion and gateway service per topology).
    Topology,
    /// Group by checkpoint-integrity scheme — one digest per
    /// [`Integrity`](crate::Integrity) axis value, which puts the
    /// unguarded baseline next to each guard (compare silent-corruption
    /// exposure and commit-energy overhead per scheme).
    Integrity,
}

impl GroupAxis {
    /// The axis label of one scenario.
    pub(crate) fn key(self, scenario: &Scenario) -> String {
        match self {
            GroupAxis::Environment => scenario.environment.name().to_string(),
            GroupAxis::Strategy => scenario.strategy.name().to_string(),
            GroupAxis::Board => scenario.board.name().to_string(),
            GroupAxis::Workload => scenario.workload.name().to_string(),
            GroupAxis::EnergyBudget => budget_label(scenario.energy_budget_nj),
            GroupAxis::Fault => scenario.fault.label(),
            GroupAxis::Topology => scenario.topology.label(),
            GroupAxis::Integrity => scenario.integrity.label().to_string(),
        }
    }

    /// The axis name (column header).
    pub fn name(self) -> &'static str {
        match self {
            GroupAxis::Environment => "environment",
            GroupAxis::Strategy => "strategy",
            GroupAxis::Board => "board",
            GroupAxis::Workload => "workload",
            GroupAxis::EnergyBudget => "energy_budget",
            GroupAxis::Fault => "fault",
            GroupAxis::Topology => "topology",
            GroupAxis::Integrity => "integrity",
        }
    }

    /// Parses the axis back from [`name`](Self::name) — the inverse the
    /// shard checkpoint store uses when restoring grouped frontiers.
    pub(crate) fn parse(name: &str) -> Option<Self> {
        [
            GroupAxis::Environment,
            GroupAxis::Strategy,
            GroupAxis::Board,
            GroupAxis::Workload,
            GroupAxis::EnergyBudget,
            GroupAxis::Fault,
            GroupAxis::Topology,
            GroupAxis::Integrity,
        ]
        .into_iter()
        .find(|a| a.name() == name)
    }
}

/// The group label of one energy-budget axis entry.
pub(crate) fn budget_label(budget: Option<f64>) -> String {
    match budget {
        None => "unbounded".to_string(),
        Some(nj) => format!("{nj}nJ"),
    }
}

/// One [`FleetDigest`] per distinct value of a scenario axis, in
/// first-appearance (matrix) order — "how does each environment /
/// strategy / board do across the whole sweep" in fixed memory.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupedDigest {
    /// The axis grouped on.
    pub axis: GroupAxis,
    /// `(axis value, digest)` pairs in first-appearance order.
    pub groups: Vec<(String, FleetDigest)>,
}

impl GroupedDigest {
    /// The digest for one axis value, if present.
    pub fn get(&self, key: &str) -> Option<&FleetDigest> {
        self.groups
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, digest)| digest)
    }
}

impl fmt::Display for GroupedDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<16} {:>9} {:>11} {:>8} {:>7} {:>9} {:>9} {:>9} {:>10}",
            self.axis.name(),
            "scenarios",
            "done/runs",
            "reboots",
            "acc",
            "p50 ms",
            "p90 ms",
            "p99 ms",
            "dark p50 s"
        )?;
        for (key, d) in &self.groups {
            writeln!(
                f,
                "{key:<16} {:>9} {:>5}/{:<5} {:>8} {:>6.1}% {:>9.2} {:>9.2} {:>9.2} {:>10.4}",
                d.scenarios,
                d.completed_runs,
                d.runs,
                d.outages,
                d.mean_accuracy().unwrap_or(0.0) * 100.0,
                d.latency_ms.p50().unwrap_or(0.0),
                d.latency_ms.p90().unwrap_or(0.0),
                d.latency_ms.p99().unwrap_or(0.0),
                d.dark_s.p50().unwrap_or(0.0)
            )?;
        }
        Ok(())
    }
}

/// Aggregates one [`FleetDigest`] per value of a scenario axis.
#[derive(Debug)]
pub struct GroupBySink {
    axis: GroupAxis,
    groups: Vec<(String, FleetDigest)>,
}

impl GroupBySink {
    /// A sink grouping on the given axis.
    pub fn new(axis: GroupAxis) -> Self {
        GroupBySink {
            axis,
            groups: Vec::new(),
        }
    }
}

impl MetricsSink for GroupBySink {
    type Partial = (String, FleetDigest);
    type Report = GroupedDigest;

    fn open(&self, scenario: &Scenario, accuracy: f64) -> (String, FleetDigest) {
        let mut partial = FleetDigest::new();
        partial.scenarios = 1;
        partial.accuracy.record(accuracy);
        (self.axis.key(scenario), partial)
    }

    fn fold(partial: &mut (String, FleetDigest), record: &RunRecord<'_>) {
        partial.1.fold_run(record);
    }

    fn fold_slo(partial: &mut (String, FleetDigest), outcome: &SloOutcome) {
        partial.1.slo.fold_outcome(outcome);
    }

    fn merge(&mut self, (key, partial): (String, FleetDigest)) -> Result<(), Error> {
        match self.groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, digest)) => digest.merge(&partial),
            None => self.groups.push((key, partial)),
        }
        Ok(())
    }

    fn finish(self) -> Result<GroupedDigest, Error> {
        Ok(GroupedDigest {
            axis: self.axis,
            groups: self.groups,
        })
    }
}

// ----------------------------------------------------------- row sinks

/// The row fields shared by [`JsonlSink`] and [`CsvSink`], in column
/// order.
fn row_fields(record: &RunRecord<'_>) -> [(&'static str, String); 23] {
    let s = record.scenario;
    let r = record.report;
    [
        ("scenario", s.index.to_string()),
        ("workload", s.workload.name().to_string()),
        ("environment", s.environment.name().to_string()),
        ("strategy", s.strategy.name().to_string()),
        ("board", s.board.name().to_string()),
        ("seed", s.seed.to_string()),
        (
            "energy_budget_nj",
            s.energy_budget_nj
                .map_or(String::new(), |nj| nj.to_string()),
        ),
        ("fault", s.fault.label()),
        ("topology", s.topology.label()),
        ("integrity", s.integrity.label().to_string()),
        ("run", record.run.to_string()),
        ("outcome", r.outcome.label().to_string()),
        ("accuracy", record.accuracy.to_string()),
        (
            "latency_ms",
            r.latency_ms().map_or(String::new(), |ms| ms.to_string()),
        ),
        ("outages", r.outages.to_string()),
        ("restores", r.restores.to_string()),
        ("ondemand_checkpoints", r.ondemand_checkpoints.to_string()),
        ("executed_ops", r.executed_ops.to_string()),
        ("wasted_ops", r.wasted_ops.to_string()),
        ("energy_nj", r.energy.nanojoules().to_string()),
        ("active_seconds", r.active_seconds.to_string()),
        ("dark_s", r.charging_seconds.to_string()),
        ("wall_seconds", r.wall_seconds.to_string()),
    ]
}

/// Whether a field is a JSON string (true) or bare number (false).
fn json_is_string(name: &str) -> bool {
    matches!(
        name,
        "workload"
            | "environment"
            | "strategy"
            | "board"
            | "fault"
            | "topology"
            | "integrity"
            | "outcome"
    )
}

/// RFC-4180-style CSV field escape: fields containing a comma, quote
/// or line break are quoted with inner quotes doubled (user-named
/// replay environments can contain anything).
fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Minimal JSON string escape (our names are plain ASCII, but quotes
/// and backslashes must never corrupt the stream).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Streams one JSON object per run to a writer, rows in (matrix, run)
/// order. Retains only the rows of scenarios still in flight; the
/// stream itself is the output.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
    rows: u64,
}

impl<W: Write> JsonlSink<W> {
    /// A sink streaming JSONL rows into `writer`.
    pub fn new(writer: W) -> Self {
        JsonlSink { writer, rows: 0 }
    }
}

impl<W: Write> MetricsSink for JsonlSink<W> {
    /// One pre-rendered row per run.
    type Partial = Vec<String>;
    /// The writer (handed back) and the number of rows written.
    type Report = (W, u64);

    fn open(&self, _scenario: &Scenario, _accuracy: f64) -> Vec<String> {
        Vec::new()
    }

    fn fold(partial: &mut Vec<String>, record: &RunRecord<'_>) {
        let mut row = String::with_capacity(256);
        row.push('{');
        for (i, (name, value)) in row_fields(record).iter().enumerate() {
            if i > 0 {
                row.push(',');
            }
            row.push('"');
            row.push_str(name);
            row.push_str("\":");
            if value.is_empty() {
                row.push_str("null");
            } else if json_is_string(name) {
                row.push('"');
                row.push_str(&json_escape(value));
                row.push('"');
            } else {
                row.push_str(value);
            }
        }
        row.push('}');
        partial.push(row);
    }

    fn merge(&mut self, partial: Vec<String>) -> Result<(), Error> {
        for row in partial {
            self.writer.write_all(row.as_bytes())?;
            self.writer.write_all(b"\n")?;
            self.rows += 1;
        }
        Ok(())
    }

    fn finish(mut self) -> Result<(W, u64), Error> {
        self.writer.flush()?;
        Ok((self.writer, self.rows))
    }
}

/// Streams one CSV row per run to a writer (header first), rows in
/// (matrix, run) order.
#[derive(Debug)]
pub struct CsvSink<W: Write> {
    writer: W,
    rows: u64,
    wrote_header: bool,
}

impl<W: Write> CsvSink<W> {
    /// A sink streaming CSV rows into `writer`.
    pub fn new(writer: W) -> Self {
        CsvSink {
            writer,
            rows: 0,
            wrote_header: false,
        }
    }

    fn write_header(&mut self) -> Result<(), Error> {
        if !self.wrote_header {
            self.wrote_header = true;
            self.writer.write_all(CSV_COLUMNS.join(",").as_bytes())?;
            self.writer.write_all(b"\n")?;
        }
        Ok(())
    }
}

/// The CSV column names, in order (matches [`row_fields`]).
const CSV_COLUMNS: [&str; 23] = [
    "scenario",
    "workload",
    "environment",
    "strategy",
    "board",
    "seed",
    "energy_budget_nj",
    "fault",
    "topology",
    "integrity",
    "run",
    "outcome",
    "accuracy",
    "latency_ms",
    "outages",
    "restores",
    "ondemand_checkpoints",
    "executed_ops",
    "wasted_ops",
    "energy_nj",
    "active_seconds",
    "dark_s",
    "wall_seconds",
];

impl<W: Write> MetricsSink for CsvSink<W> {
    /// One pre-rendered row per run.
    type Partial = Vec<String>;
    /// The writer (handed back) and the number of data rows written.
    type Report = (W, u64);

    fn open(&self, _scenario: &Scenario, _accuracy: f64) -> Vec<String> {
        Vec::new()
    }

    fn fold(partial: &mut Vec<String>, record: &RunRecord<'_>) {
        let fields = row_fields(record);
        let mut row = String::with_capacity(192);
        for (i, (_, value)) in fields.iter().enumerate() {
            if i > 0 {
                row.push(',');
            }
            row.push_str(&csv_escape(value));
        }
        partial.push(row);
    }

    fn merge(&mut self, partial: Vec<String>) -> Result<(), Error> {
        self.write_header()?;
        for row in partial {
            self.writer.write_all(row.as_bytes())?;
            self.writer.write_all(b"\n")?;
            self.rows += 1;
        }
        Ok(())
    }

    fn finish(mut self) -> Result<(W, u64), Error> {
        self.write_header()?;
        self.writer.flush()?;
        Ok((self.writer, self.rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioMatrix;
    use ehdl::device::{Cycles, Energy, EnergyMeter};

    fn fake_report(outcome: RunOutcome, wall_seconds: f64) -> RunReport {
        RunReport {
            outcome,
            outages: 2,
            ondemand_checkpoints: 1,
            restores: 2,
            executed_ops: 100,
            wasted_ops: 10,
            active_cycles: Cycles::new(1_000),
            active_seconds: 0.01,
            charging_seconds: 0.02,
            wall_seconds,
            energy: Energy::from_nanojoules(5_000.0),
            checkpoint_energy: Energy::from_nanojoules(100.0),
            meter: EnergyMeter::new(),
            faults: FaultTally::default(),
            integrity: IntegrityTally::default(),
        }
    }

    /// Feeds the same two-scenario, two-run stream through any sink.
    fn drive<S: MetricsSink>(mut sink: S) -> S::Report {
        let scenarios = ScenarioMatrix::new().scenarios(); // 4 envs × FLEX
        for scenario in scenarios.iter().take(2) {
            let mut partial = sink.open(scenario, 0.75);
            for run in 0..2u32 {
                let outcome = if run == 0 {
                    RunOutcome::Completed
                } else {
                    RunOutcome::EnergyLimit
                };
                let report = fake_report(outcome, 0.1 * f64::from(run + 1));
                let record = RunRecord {
                    scenario,
                    run,
                    accuracy: 0.75,
                    report: &report,
                };
                S::fold(&mut partial, &record);
            }
            sink.merge(partial).unwrap();
        }
        sink.finish().unwrap()
    }

    #[test]
    fn full_report_sink_rebuilds_scenario_reports() {
        let report = drive(FullReportSink::new());
        assert_eq!(report.len(), 2);
        let s = &report.scenarios[0];
        assert_eq!(s.runs, 2);
        assert_eq!(s.completed_runs, 1);
        assert_eq!(s.energy_limited_runs, 1);
        assert_eq!(s.outages, 4);
        assert_eq!(s.latencies_ms, vec![100.0]);
        assert_eq!(s.environment, "bench_supply");
        assert_eq!(report.scenarios[1].environment, "office_rf");
    }

    #[test]
    fn digest_sink_folds_to_fixed_size_state() {
        let digest = drive(DigestSink::new());
        assert_eq!(digest.scenarios, 2);
        assert_eq!(digest.runs, 4);
        assert_eq!(digest.completed_runs, 2);
        assert_eq!(digest.energy_limited_runs, 2);
        assert_eq!(digest.outages, 8);
        assert_eq!(digest.latency_ms.count(), 2);
        assert_eq!(digest.accuracy.mean(), Some(0.75));
        // Every run contributes a dark-time sample, completed or not.
        assert_eq!(digest.dark_s.count(), 4);
        assert_eq!(digest.dark_s.mean(), Some(0.02));
        assert!((digest.charging_seconds - 0.08).abs() < 1e-12);
        assert!((digest.total_energy_mj() - 20_000.0 * 1e-6).abs() < 1e-12);
        let text = digest.to_string();
        assert!(text.contains("2 energy-limit"), "{text}");
    }

    #[test]
    fn fleet_digests_merge() {
        let a = drive(DigestSink::new());
        let b = drive(DigestSink::new());
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.scenarios, 4);
        assert_eq!(merged.runs, 8);
        assert_eq!(merged.latency_ms.count(), 4);
        assert_eq!(merged.dark_s.count(), 8);
        // Merging an empty digest is the identity.
        let mut copy = a.clone();
        copy.merge(&FleetDigest::new());
        assert_eq!(copy, a);
    }

    #[test]
    fn group_by_sink_groups_in_first_appearance_order() {
        // Two scenarios differ in environment → two environment groups,
        // but a single strategy group.
        let by_env = drive(GroupBySink::new(GroupAxis::Environment));
        assert_eq!(by_env.groups.len(), 2);
        assert_eq!(by_env.groups[0].0, "bench_supply");
        assert_eq!(by_env.groups[1].0, "office_rf");
        assert_eq!(by_env.get("bench_supply").unwrap().runs, 2);
        assert!(by_env.get("missing").is_none());

        let by_strategy = drive(GroupBySink::new(GroupAxis::Strategy));
        assert_eq!(by_strategy.groups.len(), 1);
        assert_eq!(by_strategy.groups[0].1.runs, 4);
        let text = by_strategy.to_string();
        assert!(text.contains("strategy"), "{text}");
    }

    #[test]
    fn jsonl_sink_streams_one_object_per_run() {
        let (bytes, rows) = drive(JsonlSink::new(Vec::new()));
        assert_eq!(rows, 4);
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with('{') && lines[0].ends_with('}'));
        assert!(lines[0].contains("\"outcome\":\"completed\""));
        assert!(lines[1].contains("\"outcome\":\"energy_limit\""));
        // Aborted runs have no latency.
        assert!(lines[1].contains("\"latency_ms\":null"));
        assert!(lines[0].contains("\"latency_ms\":100"));
        assert!(lines[0].contains("\"environment\":\"bench_supply\""));
    }

    #[test]
    fn csv_sink_writes_header_and_rows() {
        let (bytes, rows) = drive(CsvSink::new(Vec::new()));
        assert_eq!(rows, 4);
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].starts_with("scenario,workload,environment"));
        assert_eq!(lines[1].split(',').count(), CSV_COLUMNS.len());
        // Empty latency field for the aborted run.
        assert!(lines[2].contains(",energy_limit,"));
        // An empty sweep still produces the header.
        let empty: CsvSink<Vec<u8>> = CsvSink::new(Vec::new());
        let (bytes, rows) = empty.finish().unwrap();
        assert_eq!(rows, 0);
        assert!(String::from_utf8(bytes).unwrap().starts_with("scenario,"));
    }

    #[test]
    fn paired_sinks_fold_side_by_side() {
        let (digest, (bytes, rows)) = drive((DigestSink::new(), JsonlSink::new(Vec::new())));
        assert_eq!(digest.runs, 4);
        assert_eq!(rows, 4);
        assert!(!bytes.is_empty());
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
    }

    #[test]
    fn csv_escape_quotes_hostile_fields() {
        assert_eq!(csv_escape("bench_supply"), "bench_supply");
        assert_eq!(csv_escape("lab, day 2"), "\"lab, day 2\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_escape("a\nb"), "\"a\nb\"");
    }

    #[test]
    fn csv_rows_survive_comma_bearing_environment_names() {
        let env = ehdl::ehsim::catalog::replay("lab, day 2", vec![(0.1, 0.002)]).unwrap();
        let scenarios = ScenarioMatrix::new().environments(vec![env]).scenarios();
        let sink = CsvSink::new(Vec::new());
        let mut partial = sink.open(&scenarios[0], 0.5);
        let report = fake_report(RunOutcome::Completed, 0.1);
        let record = RunRecord {
            scenario: &scenarios[0],
            run: 0,
            accuracy: 0.5,
            report: &report,
        };
        CsvSink::<Vec<u8>>::fold(&mut partial, &record);
        // The quoted field keeps the column count intact.
        let row = &partial[0];
        assert!(row.contains("\"lab, day 2\""), "{row}");
        let mut fields = 0usize;
        let mut in_quotes = false;
        for c in row.chars() {
            match c {
                '"' => in_quotes = !in_quotes,
                ',' if !in_quotes => fields += 1,
                _ => {}
            }
        }
        assert_eq!(fields + 1, CSV_COLUMNS.len());
    }

    #[test]
    fn csv_columns_pin_the_row_schema() {
        // The three hand-maintained schema views must agree: the header
        // list, the row field names, and the JSON string-typing.
        let scenarios = ScenarioMatrix::new().scenarios();
        let report = fake_report(RunOutcome::Completed, 0.1);
        let record = RunRecord {
            scenario: &scenarios[0],
            run: 0,
            accuracy: 0.5,
            report: &report,
        };
        let names: Vec<&str> = row_fields(&record).iter().map(|(n, _)| *n).collect();
        assert_eq!(names, CSV_COLUMNS);
        let string_typed: Vec<&str> = names
            .iter()
            .copied()
            .filter(|n| json_is_string(n))
            .collect();
        assert_eq!(
            string_typed,
            [
                "workload",
                "environment",
                "strategy",
                "board",
                "fault",
                "topology",
                "integrity",
                "outcome"
            ]
        );
    }

    #[test]
    fn resilience_tally_folds_faulted_runs_into_the_digest() {
        let scenarios = ScenarioMatrix::new().scenarios();
        let sink = DigestSink::new();
        let mut partial = sink.open(&scenarios[0], 0.9);
        // One recovered faulted run, one clean run, one faulted failure.
        let mut recovered = fake_report(RunOutcome::Completed, 0.1);
        recovered.faults = FaultTally {
            spurious_resets: 2,
            torn_commits: 1,
            sag_ops: 5,
            corrupt_restores: 1,
            detected_corruptions: 1,
            silent_corruptions: 0,
            cold_boots: 1,
        };
        let clean = fake_report(RunOutcome::Completed, 0.1);
        let mut lost = fake_report(RunOutcome::NoProgress, 0.1);
        lost.faults.spurious_resets = 7;
        for (run, report) in [&recovered, &clean, &lost].into_iter().enumerate() {
            let record = RunRecord {
                scenario: &scenarios[0],
                run: run as u32,
                accuracy: 0.9,
                report,
            };
            DigestSink::fold(&mut partial, &record);
        }
        let mut sink = sink;
        sink.merge(partial).unwrap();
        let digest = sink.finish().unwrap();
        let r = digest.resilience;
        assert_eq!(r.faulted_runs, 2);
        assert_eq!(r.recovered_runs, 1);
        assert_eq!(r.spurious_resets, 9);
        assert_eq!(r.torn_commits, 1);
        assert_eq!(r.sag_ops, 5);
        assert_eq!(r.corrupt_restores, 1);
        assert_eq!(r.cold_boots, 1);
        assert_eq!(r.detected_corruptions, 1);
        assert_eq!(r.silent_corruptions, 0);
        assert!((r.recovery_rate() - 0.5).abs() < 1e-12);
        let text = digest.to_string();
        assert!(text.contains("resilience: 1/2 faulted runs"), "{text}");
        // Merging sums the tallies.
        let mut doubled = digest.clone();
        doubled.merge(&digest);
        assert_eq!(doubled.resilience.faulted_runs, 4);
        assert_eq!(doubled.resilience.spurious_resets, 18);
    }

    #[test]
    fn fault_free_digest_report_omits_the_resilience_line() {
        let digest = drive(DigestSink::new());
        assert_eq!(digest.resilience, ResilienceTally::default());
        assert_eq!(digest.resilience.recovery_rate(), 1.0);
        assert!(!digest.to_string().contains("resilience:"));
    }

    #[test]
    fn slo_tally_folds_gateway_outcomes_into_the_digest() {
        let scenarios = ScenarioMatrix::new().scenarios();
        let sink = DigestSink::new();
        let mut partial = sink.open(&scenarios[0], 0.9);
        let outcome = SloOutcome {
            devices: 4,
            polls: 10,
            served: 7,
            missed_asleep: 2,
            missed_stale: 1,
            starved_devices: 1,
            staleness_s: vec![0.5, 1.0, 1.5, 0.5, 2.0, 1.0, 0.5],
        };
        DigestSink::fold_slo(&mut partial, &outcome);
        let mut sink = sink;
        sink.merge(partial).unwrap();
        let digest = sink.finish().unwrap();
        let s = &digest.slo;
        assert_eq!(s.worlds, 1);
        assert_eq!(s.devices, 4);
        assert_eq!(s.polls, 10);
        assert_eq!(s.served, 7);
        assert_eq!(s.missed_asleep, 2);
        assert_eq!(s.missed_stale, 1);
        assert_eq!(s.starved_devices, 1);
        assert_eq!(s.staleness_s.count(), 7);
        assert!((s.served_fraction() - 0.7).abs() < 1e-12);
        let text = digest.to_string();
        assert!(text.contains("gateway: 7/10 polls served"), "{text}");
        // Merging sums counters and merges the staleness sketch.
        let mut doubled = digest.clone();
        doubled.merge(&digest);
        assert_eq!(doubled.slo.polls, 20);
        assert_eq!(doubled.slo.staleness_s.count(), 14);
        // The extra sketch stays inside the O(1) memory accounting.
        assert!(digest.memory_bytes() >= digest.slo.staleness_s.memory_bytes());
    }

    #[test]
    fn solo_digest_report_omits_the_gateway_line() {
        let digest = drive(DigestSink::new());
        assert_eq!(digest.slo, SloTally::default());
        assert_eq!(digest.slo.served_fraction(), 0.0);
        assert!(!digest.to_string().contains("gateway:"));
    }

    #[test]
    fn topology_axis_groups_by_topology_label() {
        use ehdl_netsim::NetworkTopology;
        let scenarios = ScenarioMatrix::new()
            .topologies(vec![
                NetworkTopology::solo(),
                NetworkTopology::line(4, 1.0, 0.5),
            ])
            .scenarios();
        let mut sink = GroupBySink::new(GroupAxis::Topology);
        for scenario in &scenarios {
            let partial = sink.open(scenario, 0.5);
            sink.merge(partial).unwrap();
        }
        let grouped = sink.finish().unwrap();
        assert_eq!(grouped.groups.len(), 2);
        assert_eq!(grouped.groups[0].0, "solo");
        assert!(grouped.groups[1].0.starts_with("n4:"));
        assert_eq!(GroupAxis::Topology.name(), "topology");
        assert_eq!(GroupAxis::parse("topology"), Some(GroupAxis::Topology));
    }

    #[test]
    fn collapsed_latency_tail_warns_in_the_rendered_report() {
        let mut digest = FleetDigest::new();
        // 85 spread samples + a tail clustered tighter than one ~4.08%
        // histogram bin → p90 and p99 share a bin.
        for i in 0..85 {
            digest.latency_ms.record(1.0 + f64::from(i));
        }
        for i in 0..15 {
            digest
                .latency_ms
                .record(6700.0 * (1.0 + 1e-3 * f64::from(i)));
        }
        assert!(digest.latency_fidelity().tail_collapsed());
        let text = digest.to_string();
        assert!(text.contains("warning: latency p90 and p99"), "{text}");
        // A tail spread across bins stays silent.
        let mut healthy = FleetDigest::new();
        for i in 0..100 {
            healthy.latency_ms.record(1.0 + 2.0 * f64::from(i));
        }
        assert!(!healthy.latency_fidelity().tail_collapsed());
        assert!(!healthy.to_string().contains("warning:"));
    }

    #[test]
    fn integrity_tally_folds_into_the_digest_and_renders() {
        let scenarios = ScenarioMatrix::new().scenarios();
        let sink = DigestSink::new();
        let mut partial = sink.open(&scenarios[0], 0.9);
        let mut flipped = fake_report(RunOutcome::Completed, 0.1);
        flipped.integrity = IntegrityTally {
            flips_injected: 4,
            flips_repaired: 1,
            flips_detected: 2,
            silent_restores: 0,
            wear_max_commits: 120,
            ladder: [3, 1, 2, 0],
        };
        let mut worn = fake_report(RunOutcome::Completed, 0.1);
        worn.integrity.wear_max_commits = 80;
        worn.integrity.ladder = [2, 0, 0, 0];
        for (run, report) in [&flipped, &worn].into_iter().enumerate() {
            let record = RunRecord {
                scenario: &scenarios[0],
                run: run as u32,
                accuracy: 0.9,
                report,
            };
            DigestSink::fold(&mut partial, &record);
        }
        let mut sink = sink;
        sink.merge(partial).unwrap();
        let digest = sink.finish().unwrap();
        let i = digest.integrity;
        assert_eq!(i.flips_injected, 4);
        assert_eq!(i.flips_repaired, 1);
        assert_eq!(i.flips_detected, 2);
        assert_eq!(i.wear_max_commits, 120, "wear folds by max");
        assert_eq!(i.ladder, [5, 1, 2, 0]);
        let text = digest.to_string();
        assert!(text.contains("integrity: 4 flips injected"), "{text}");
        // An integrity-free digest omits the line entirely.
        let clean = drive(DigestSink::new());
        assert!(clean.integrity.is_empty());
        assert!(!clean.to_string().contains("integrity:"));
    }

    #[test]
    fn integrity_axis_groups_by_scheme_label() {
        use ehdl::ehsim::Integrity;
        let scenarios = ScenarioMatrix::new()
            .integrities(vec![Integrity::None, Integrity::Secded])
            .scenarios();
        let mut sink = GroupBySink::new(GroupAxis::Integrity);
        for scenario in &scenarios {
            let partial = sink.open(scenario, 0.5);
            sink.merge(partial).unwrap();
        }
        let grouped = sink.finish().unwrap();
        assert_eq!(grouped.groups.len(), 2);
        assert_eq!(grouped.groups[0].0, "none");
        assert_eq!(grouped.groups[1].0, "secded");
        assert_eq!(GroupAxis::Integrity.name(), "integrity");
        assert_eq!(GroupAxis::parse("integrity"), Some(GroupAxis::Integrity));
    }

    #[test]
    fn collapsed_staleness_tail_warns_in_the_rendered_report() {
        let mut digest = FleetDigest::new();
        digest.slo.polls = 100;
        digest.slo.served = 100;
        // 85 spread samples + a tail clustered tighter than one bin.
        for i in 0..85 {
            digest.slo.staleness_s.record(1.0 + f64::from(i));
        }
        for i in 0..15 {
            digest
                .slo
                .staleness_s
                .record(6700.0 * (1.0 + 1e-3 * f64::from(i)));
        }
        assert!(digest.staleness_fidelity().tail_collapsed());
        let text = digest.to_string();
        assert!(text.contains("warning: staleness p90 and p99"), "{text}");
        // A healthy staleness spread stays silent.
        let mut healthy = FleetDigest::new();
        healthy.slo.polls = 100;
        for i in 0..100 {
            healthy.slo.staleness_s.record(1.0 + 2.0 * f64::from(i));
        }
        assert!(!healthy.to_string().contains("warning: staleness"));
        // No polls → no warning even if the sketch were somehow fed.
        assert!(!FleetDigest::new().to_string().contains("warning:"));
    }

    #[test]
    fn fault_axis_groups_by_fault_label() {
        use crate::FaultSpec;
        let noisy = FaultSpec {
            seed: 9,
            reset_per_op: 0.001,
            ..FaultSpec::none()
        };
        let scenarios = ScenarioMatrix::new()
            .faults(vec![FaultSpec::none(), noisy])
            .scenarios();
        let mut sink = GroupBySink::new(GroupAxis::Fault);
        for scenario in &scenarios {
            let partial = sink.open(scenario, 0.5);
            sink.merge(partial).unwrap();
        }
        let grouped = sink.finish().unwrap();
        assert_eq!(grouped.groups.len(), 2);
        assert_eq!(grouped.groups[0].0, "none");
        assert!(grouped.groups[1].0.starts_with("f9:"));
        assert_eq!(GroupAxis::Fault.name(), "fault");
        assert_eq!(GroupAxis::parse("fault"), Some(GroupAxis::Fault));
    }
}
