//! Phase profiling for fleet sweeps: where the wall-clock time goes
//! (charge solving, plan execution, checkpoint/restore, trace replay,
//! sink folding) and how well the runner's caches work (plan, trace,
//! deployment hit/miss/size counters — the evidence the ROADMAP's cache
//! eviction follow-on needs).
//!
//! A [`PhaseProfile`] is an [`ExecProbe`] with
//! [`TIMED`](ExecProbe::TIMED) `= true`: handed to a probed executor
//! run it collects charge-solve and checkpoint/restore spans from
//! inside the hot loop, while the fleet runner adds the spans only it
//! can see (whole plan executions, trace replays, sink folds) plus the
//! cache counters. Spans aggregate into mergeable [`StatsDigest`]s, so
//! per-worker and per-shard profiles combine like the fleet's metric
//! sinks: merging chunks in stream order reassembles every span count,
//! histogram bin, min/max and cache counter exactly, and the merge is a
//! pure function — the same parts in the same order always reproduce
//! the same bits (float *sums* reassociate across chunk boundaries, so
//! they agree with an unchunked accumulation to rounding).
//!
//! Profiles are a **side channel**: wall-clock timings are
//! machine-dependent, so they never enter a [`FleetDigest`]
//! (crate::FleetDigest) or any other sink — those stay bit-identical
//! with profiling on or off. What *is* deterministic: every span/lookup
//! **count** at one worker, and cache `hits + misses` totals at any
//! worker count (the trace hit/miss *split* can shift when racing
//! workers both record the same trajectory).

use crate::digest::StatsDigest;
use core::fmt;
use ehdl::ehsim::{ExecEvent, ExecPhase, ExecProbe};

/// Hit/miss/size counters for one runner cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheCounters {
    /// Lookups served by an existing entry.
    pub hits: u64,
    /// Lookups that had to build the entry.
    pub misses: u64,
    /// Entries resident at the end of the sweep.
    pub entries: u64,
    /// Entries evicted to stay under the cache's capacity bound — a
    /// nonzero count means later lookups rebuilt evicted state, so a
    /// larger [`cache_entries`](crate::FleetBuilder::cache_entries) cap
    /// would trade memory for fewer rebuilds.
    pub evictions: u64,
}

impl CacheCounters {
    /// Total lookups (`hits + misses`).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from cache (0 when never consulted).
    pub fn hit_rate(&self) -> f64 {
        match self.lookups() {
            0 => 0.0,
            n => self.hits as f64 / n as f64,
        }
    }

    /// Adds `other`'s counters.
    pub fn merge(&mut self, other: &CacheCounters) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.entries += other.entries;
        self.evictions += other.evictions;
    }
}

/// The fleet runner's three caches.
///
/// Lookup granularity differs per cache and is part of the contract:
/// the **deployment** cache is consulted once per scenario, the
/// **plan** cache once per distinct deployment (plans are shared across
/// seeds), and the **trace** cache once per run of a
/// deterministic-environment scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Compiled [`ExecutionPlan`](ehdl::ehsim::ExecutionPlan)s, keyed
    /// by (workload, board, strategy).
    pub plan: CacheCounters,
    /// Recorded [`RunTrace`](ehdl::ehsim::RunTrace)s, keyed by
    /// (plan, environment, budget).
    pub trace: CacheCounters,
    /// Built [`Deployment`](ehdl::Deployment)s, keyed by
    /// (workload, board, strategy, seed).
    pub deployment: CacheCounters,
}

impl CacheStats {
    /// Adds `other`'s counters, cache by cache.
    pub fn merge(&mut self, other: &CacheStats) {
        self.plan.merge(&other.plan);
        self.trace.merge(&other.trace);
        self.deployment.merge(&other.deployment);
    }
}

/// Wall-clock phase spans (as [`StatsDigest`]s of seconds) plus cache
/// counters for one sweep, worker or shard. See the module docs for
/// the merge and determinism contract.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PhaseProfile {
    /// Dark-phase charge solves (from inside the executor).
    pub charge_solve_s: StatsDigest,
    /// Whole live plan (or reference-interpreter) executions.
    pub plan_exec_s: StatsDigest,
    /// On-demand checkpoints and post-outage restores (from inside the
    /// executor).
    pub checkpoint_restore_s: StatsDigest,
    /// Recorded-trace replays.
    pub trace_replay_s: StatsDigest,
    /// Per-record metric-sink folds and in-order merges.
    pub sink_fold_s: StatsDigest,
    /// Plan / trace / deployment cache counters.
    pub caches: CacheStats,
}

impl PhaseProfile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one wall-clock span into the phase's digest.
    pub fn record(&mut self, phase: ExecPhase, seconds: f64) {
        self.digest_mut(phase).record(seconds);
    }

    /// The span digest for one phase.
    pub fn digest(&self, phase: ExecPhase) -> &StatsDigest {
        match phase {
            ExecPhase::ChargeSolve => &self.charge_solve_s,
            ExecPhase::PlanExec => &self.plan_exec_s,
            ExecPhase::CheckpointRestore => &self.checkpoint_restore_s,
            ExecPhase::TraceReplay => &self.trace_replay_s,
            ExecPhase::SinkFold => &self.sink_fold_s,
        }
    }

    /// Replaces one phase's digest wholesale (wire deserialization).
    pub(crate) fn digest_replace(&mut self, phase: ExecPhase, digest: StatsDigest) {
        *self.digest_mut(phase) = digest;
    }

    fn digest_mut(&mut self, phase: ExecPhase) -> &mut StatsDigest {
        match phase {
            ExecPhase::ChargeSolve => &mut self.charge_solve_s,
            ExecPhase::PlanExec => &mut self.plan_exec_s,
            ExecPhase::CheckpointRestore => &mut self.checkpoint_restore_s,
            ExecPhase::TraceReplay => &mut self.trace_replay_s,
            ExecPhase::SinkFold => &mut self.sink_fold_s,
        }
    }

    /// Merges `other` into `self`, phase by phase in [`ExecPhase::ALL`]
    /// order then caches. A pure function: merging the same parts in
    /// the same order always reproduces the same bits, and every span
    /// count, histogram bin, min/max and cache counter reassembles
    /// exactly (sums reassociate; see [`StatsDigest::merge`]).
    pub fn merge(&mut self, other: &PhaseProfile) {
        for phase in ExecPhase::ALL {
            let theirs = other.digest(phase).clone();
            self.digest_mut(phase).merge(&theirs);
        }
        self.caches.merge(&other.caches);
    }

    /// Total profiled wall-clock seconds across every phase.
    pub fn total_seconds(&self) -> f64 {
        ExecPhase::ALL
            .iter()
            .map(|&phase| self.digest(phase).sum())
            .sum()
    }

    /// Serializes the profile as one canonical JSON object (floats as
    /// bit-exact hex, like every fleet wire format).
    pub fn to_json(&self) -> String {
        crate::wire::profile_json(self)
    }

    /// Rebuilds a profile from [`to_json`](Self::to_json)'s output —
    /// bit-identical, digests included.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_json(text: &str) -> Result<PhaseProfile, String> {
        crate::wire::profile_from_json(text)
    }
}

impl ExecProbe for PhaseProfile {
    // Events are ignored, so let the executor skip computing their
    // payloads; spans are what a profile consumes.
    const ENABLED: bool = false;
    const TIMED: bool = true;

    #[inline(always)]
    fn event(&mut self, _event: ExecEvent) {}

    #[inline]
    fn span(&mut self, phase: ExecPhase, seconds: f64) {
        self.record(phase, seconds);
    }
}

impl fmt::Display for PhaseProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total_seconds();
        writeln!(f, "phase profile ({total:.3} s profiled):")?;
        for phase in ExecPhase::ALL {
            let d = self.digest(phase);
            let share = if total > 0.0 {
                d.sum() / total * 100.0
            } else {
                0.0
            };
            writeln!(
                f,
                "  {:<18} {:>10.4} s ({:5.1}%) over {} spans",
                phase.name(),
                d.sum(),
                share,
                d.count()
            )?;
        }
        for (name, c) in [
            ("plan", &self.caches.plan),
            ("trace", &self.caches.trace),
            ("deployment", &self.caches.deployment),
        ] {
            writeln!(
                f,
                "  {:<18} cache: {} hits / {} misses ({:.1}% hit), {} entries, {} evictions",
                name,
                c.hits,
                c.misses,
                c.hit_rate() * 100.0,
                c.entries,
                c.evictions
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_fold_into_the_right_phase() {
        let mut p = PhaseProfile::new();
        p.span(ExecPhase::ChargeSolve, 0.5);
        p.span(ExecPhase::ChargeSolve, 0.25);
        p.record(ExecPhase::SinkFold, 1.0);
        assert_eq!(p.charge_solve_s.count(), 2);
        assert_eq!(p.charge_solve_s.sum(), 0.75);
        assert_eq!(p.sink_fold_s.count(), 1);
        assert_eq!(p.plan_exec_s.count(), 0);
        assert_eq!(p.total_seconds(), 1.75);
    }

    #[test]
    fn chunked_merge_in_stream_order_survives_sharding() {
        // The shard-merge contract: per-chunk profiles of a span
        // stream, merged in stream order, reassemble every piece of
        // integer state (span counts, histogram bins, cache counters)
        // and min/max exactly; float sums reassociate, so they agree to
        // rounding. And the merge itself is a pure function — repeating
        // it over the same parts (even round-tripped through the wire)
        // is bit-identical, which is what a resumed shard merge relies
        // on.
        let spans: Vec<(ExecPhase, f64)> = (0..500)
            .map(|i| {
                let phase = ExecPhase::ALL[i % ExecPhase::ALL.len()];
                (phase, 1e-4 * (i as f64 + 0.3) * (1.0 + (i % 7) as f64))
            })
            .collect();
        let mut whole = PhaseProfile::new();
        for &(phase, s) in &spans {
            whole.record(phase, s);
        }
        for chunk_size in [1usize, 7, 100, 500] {
            let parts: Vec<PhaseProfile> = spans
                .chunks(chunk_size)
                .map(|chunk| {
                    let mut part = PhaseProfile::new();
                    for &(phase, s) in chunk {
                        part.record(phase, s);
                    }
                    part
                })
                .collect();
            let mut merged = PhaseProfile::new();
            for part in &parts {
                merged.merge(part);
            }
            for phase in ExecPhase::ALL {
                let (m, w) = (merged.digest(phase), whole.digest(phase));
                assert_eq!(m.count(), w.count(), "chunk size {chunk_size}");
                assert_eq!(m.min(), w.min(), "chunk size {chunk_size}");
                assert_eq!(m.max(), w.max(), "chunk size {chunk_size}");
                assert!(
                    (m.sum() - w.sum()).abs() <= 1e-12 * w.sum(),
                    "chunk size {chunk_size}: {} vs {}",
                    m.sum(),
                    w.sum()
                );
            }
            // Single-span chunks preserve the exact left-to-right
            // addition order, so they are bit-identical outright.
            if chunk_size == 1 {
                assert_eq!(merged, whole);
            }
            // Re-merging the same parts — straight or through the wire
            // format — reproduces the merge bit for bit.
            let mut again = PhaseProfile::new();
            for part in &parts {
                let wired = PhaseProfile::from_json(&part.to_json()).unwrap();
                again.merge(&wired);
            }
            assert_eq!(again, merged, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn cache_counters_summarize() {
        let c = CacheCounters {
            hits: 3,
            misses: 1,
            entries: 1,
            evictions: 0,
        };
        assert_eq!(c.lookups(), 4);
        assert_eq!(c.hit_rate(), 0.75);
        assert_eq!(CacheCounters::default().hit_rate(), 0.0);
        let mut a = c;
        a.merge(&c);
        assert_eq!(a.lookups(), 8);
    }

    #[test]
    fn json_round_trip_is_bit_identical() {
        let mut p = PhaseProfile::new();
        for i in 0..50 {
            p.record(ExecPhase::ALL[i % 5], 1e-5 * (i as f64 + 0.123_456_789));
        }
        p.caches.plan = CacheCounters {
            hits: 10,
            misses: 2,
            entries: 2,
            evictions: 0,
        };
        p.caches.deployment = CacheCounters {
            hits: 90,
            misses: 6,
            entries: 6,
            evictions: 3,
        };
        let json = p.to_json();
        let back = PhaseProfile::from_json(&json).unwrap();
        assert_eq!(back, p);
        // Canonical: re-serialization is byte-identical.
        assert_eq!(back.to_json(), json);
        assert!(PhaseProfile::from_json("{\"phases\":{}}").is_err());
        // The empty profile round-trips too.
        let empty = PhaseProfile::new();
        assert_eq!(PhaseProfile::from_json(&empty.to_json()).unwrap(), empty);
    }

    #[test]
    fn display_lists_every_phase_and_cache() {
        let mut p = PhaseProfile::new();
        p.record(ExecPhase::PlanExec, 2.0);
        let s = p.to_string();
        for phase in ExecPhase::ALL {
            assert!(s.contains(phase.name()), "{s}");
        }
        assert!(s.contains("deployment"), "{s}");
    }
}
