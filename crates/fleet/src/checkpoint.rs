//! The shard checkpoint store: a directory holding everything a killed
//! sweep needs to restart from its last merged prefix.
//!
//! Layout (all files written atomically — `.tmp`, fsync, rename):
//!
//! ```text
//! <dir>/job.json            the matrix spec + shard plan workers read
//! <dir>/partial-000042.ehsp one completed shard's records (checksummed)
//! <dir>/frontier.ckpt       the merged prefix: cumulative digest + groups
//! ```
//!
//! The frontier advances only after a shard's records merged in matrix
//! order, and each partial is deleted once merged — so at any kill
//! point the directory is one of: nothing (cold start), a frontier
//! covering shards `0..k` plus zero or more completed partials `>= k`,
//! or a stale `.tmp` some worker never finished (ignored; workers
//! recreate it). Every file carries the sweep [`fingerprint`]
//! (matrix + shard size), so a directory can never resume a different
//! sweep: a mismatched frontier is a typed
//! [`ShardError::CheckpointMismatch`], a corrupt one is a cold start,
//! and a corrupt partial is deleted and re-run.
//!
//! [`fingerprint`]: crate::wire::fingerprint

use crate::metrics::{FleetDigest, GroupAxis, GroupedDigest};
use crate::wire::{self, hex64, parse_hex64, Fnv64, Json, PartialHeader, ShardRecord};
use ehdl::ShardError;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// The merged prefix of a sharded sweep: everything shards `0..k`
/// contributed, exactly as an in-process run over the same scenarios
/// would have accumulated it.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Frontier {
    /// Shards merged so far (`k`): the frontier covers shards `0..k`.
    pub merged_shards: usize,
    /// The cumulative sweep digest over those shards.
    pub digest: FleetDigest,
    /// One grouped digest per requested axis, in request order.
    pub grouped: Vec<GroupedDigest>,
}

impl Frontier {
    /// A cold-start frontier for the given group axes.
    pub(crate) fn empty(axes: &[GroupAxis]) -> Self {
        Frontier {
            merged_shards: 0,
            digest: FleetDigest::new(),
            grouped: axes
                .iter()
                .map(|&axis| GroupedDigest {
                    axis,
                    groups: Vec::new(),
                })
                .collect(),
        }
    }
}

fn ck(e: std::io::Error, what: &str, path: &Path) -> ShardError {
    ShardError::Checkpoint {
        message: format!("{what} {}: {e}", path.display()),
    }
}

/// A checkpoint directory. See the [module docs](self) for the layout
/// and crash-consistency story.
#[derive(Debug, Clone)]
pub(crate) struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory.
    pub(crate) fn open(dir: &Path) -> Result<Self, ShardError> {
        fs::create_dir_all(dir).map_err(|e| ck(e, "could not create", dir))?;
        Ok(CheckpointStore {
            dir: dir.to_path_buf(),
        })
    }

    pub(crate) fn job_path(&self) -> PathBuf {
        self.dir.join("job.json")
    }

    pub(crate) fn partial_path(&self, shard: usize) -> PathBuf {
        self.dir.join(format!("partial-{shard:06}.ehsp"))
    }

    pub(crate) fn heartbeat_path(&self, shard: usize) -> PathBuf {
        self.dir.join(format!("heartbeat-{shard:06}.json"))
    }

    /// Publishes one worker heartbeat atomically. Heartbeats are
    /// telemetry, not state: a lost or stale one degrades the progress
    /// line, never the sweep, so callers ignore the error.
    pub(crate) fn write_heartbeat(&self, shard: usize, json: &str) -> Result<(), ShardError> {
        let mut bytes = json.as_bytes().to_vec();
        bytes.push(b'\n');
        self.write_atomic(&self.heartbeat_path(shard), &bytes)
    }

    /// Deletes a shard's heartbeat if present (worker done, or shard
    /// merged).
    pub(crate) fn remove_heartbeat(&self, shard: usize) {
        let _ = fs::remove_file(self.heartbeat_path(shard));
    }

    /// Deletes every `heartbeat-NNNNNN.json` left behind by a previous
    /// coordinator (killed mid-sweep, workers long gone). Run at drive
    /// start so a resumed sweep's progress line never counts orphaned
    /// heartbeats from dead workers. Best-effort like all heartbeat
    /// I/O: unreadable directories or races with concurrent deletes
    /// are ignored.
    pub(crate) fn clear_heartbeats(&self) {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.starts_with("heartbeat-") && name.ends_with(".json") {
                let _ = fs::remove_file(entry.path());
            }
        }
    }

    fn frontier_path(&self) -> PathBuf {
        self.dir.join("frontier.ckpt")
    }

    /// Writes `bytes` to `path` atomically: temp file, fsync, rename.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> Result<(), ShardError> {
        let tmp = path.with_extension("wip");
        let mut file = fs::File::create(&tmp).map_err(|e| ck(e, "could not create", &tmp))?;
        file.write_all(bytes)
            .and_then(|()| file.sync_all())
            .map_err(|e| ck(e, "could not write", &tmp))?;
        drop(file);
        fs::rename(&tmp, path).map_err(|e| ck(e, "could not publish", path))
    }

    /// Publishes the job spec workers read (always rewritten on run
    /// start, so a resumed sweep never reads a stale plan).
    pub(crate) fn write_job(&self, job_json: &str) -> Result<(), ShardError> {
        let mut bytes = job_json.as_bytes().to_vec();
        bytes.push(b'\n');
        self.write_atomic(&self.job_path(), &bytes)
    }

    /// Loads and fully verifies one shard partial. `Ok(None)` means
    /// "not usable — run the shard": the file is missing, or it failed
    /// verification (truncated, corrupt, wrong range, or from another
    /// sweep) and was deleted so a retry starts clean.
    pub(crate) fn load_partial(
        &self,
        shard: usize,
        expect: PartialHeader,
    ) -> Result<Option<Vec<ShardRecord>>, ShardError> {
        let path = self.partial_path(shard);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(ck(e, "could not read", &path)),
        };
        match wire::read_partial(&text) {
            Ok((header, records)) if header == expect => Ok(Some(records)),
            _ => {
                // Truncated, corrupt, or a stale file from a different
                // sweep or plan: delete it and let the shard re-run.
                fs::remove_file(&path).map_err(|e| ck(e, "could not discard", &path))?;
                Ok(None)
            }
        }
    }

    /// Deletes a merged (or poisoned) shard partial if present.
    pub(crate) fn remove_partial(&self, shard: usize) -> Result<(), ShardError> {
        let path = self.partial_path(shard);
        match fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(ck(e, "could not remove", &path)),
        }
    }

    /// Persists the merge frontier atomically. Called after every
    /// merged shard, so a kill at any point loses at most the shards
    /// not yet merged — and their partials are still on disk.
    pub(crate) fn save_frontier(
        &self,
        frontier: &Frontier,
        fingerprint: u64,
    ) -> Result<(), ShardError> {
        let mut text = format!(
            "{{\"ehdl_frontier\":{},\"fingerprint\":\"{}\",\"merged_shards\":{},\"groups\":[",
            wire::WIRE_VERSION,
            hex64(fingerprint),
            frontier.merged_shards
        );
        for (i, gd) in frontier.grouped.iter().enumerate() {
            if i > 0 {
                text.push(',');
            }
            text.push('"');
            text.push_str(gd.axis.name());
            text.push('"');
        }
        text.push_str("]}\n");
        text.push_str("{\"digest\":");
        text.push_str(&wire::digest_json(&frontier.digest));
        text.push_str("}\n");
        for gd in &frontier.grouped {
            for (key, digest) in &gd.groups {
                text.push_str(&format!(
                    "{{\"axis\":\"{}\",\"key\":\"{}\",\"digest\":{}}}\n",
                    gd.axis.name(),
                    crate::metrics::json_escape(key),
                    wire::digest_json(digest)
                ));
            }
        }
        let mut hash = Fnv64::new();
        hash.write(text.as_bytes());
        text.push_str(&format!("{{\"checksum\":\"{}\"}}\n", hex64(hash.finish())));
        self.write_atomic(&self.frontier_path(), text.as_bytes())
    }

    /// Restores the merge frontier, if one is usable.
    ///
    /// - No frontier file, or a corrupt/truncated one → `Ok(None)`
    ///   (cold start; surviving partials are still reused).
    /// - A frontier for a different matrix or shard size →
    ///   [`ShardError::CheckpointMismatch`].
    /// - A frontier grouped on different axes than this run requests →
    ///   [`ShardError::Checkpoint`] (its merged partials are gone, so
    ///   the missing groups cannot be rebuilt — pick a fresh
    ///   directory).
    pub(crate) fn load_frontier(
        &self,
        fingerprint: u64,
        axes: &[GroupAxis],
    ) -> Result<Option<Frontier>, ShardError> {
        let path = self.frontier_path();
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(ck(e, "could not read", &path)),
        };
        match Self::parse_frontier(&text, fingerprint, axes) {
            Ok(frontier) => Ok(Some(frontier)),
            Err(FrontierError::Fatal(e)) => Err(e),
            // Corrupt (a kill mid-rename can't cause this, but bit rot
            // can): start cold rather than trust it.
            Err(FrontierError::Corrupt(reason)) => {
                eprintln!(
                    "ehdl-fleet: ignoring corrupt frontier in {} ({reason}); starting cold",
                    self.dir.display()
                );
                Ok(None)
            }
        }
    }

    fn parse_frontier(
        text: &str,
        fingerprint: u64,
        axes: &[GroupAxis],
    ) -> Result<Frontier, FrontierError> {
        let corrupt = |m: &str| FrontierError::Corrupt(m.to_string());
        let body = text
            .strip_suffix('\n')
            .ok_or_else(|| corrupt("no trailing newline"))?;
        let footer_start = body.rfind('\n').map_or(0, |i| i + 1);
        let footer = Json::parse(&body[footer_start..]).map_err(FrontierError::Corrupt)?;
        let claimed = footer
            .get("checksum")
            .and_then(|c| c.as_str())
            .and_then(parse_hex64)
            .ok_or_else(|| corrupt("bad checksum field"))?;
        let mut hash = Fnv64::new();
        hash.write(&text.as_bytes()[..footer_start]);
        if hash.finish() != claimed {
            return Err(corrupt("checksum mismatch"));
        }
        // Checksum verified: structural errors past this point are
        // still "corrupt" (cold start), but identity mismatches are
        // fatal — the file is intact and disagrees with this run.
        let mut lines = text[..footer_start].lines();
        let header = lines
            .next()
            .and_then(|l| Json::parse(l).ok())
            .ok_or_else(|| corrupt("missing header"))?;
        if header.get("ehdl_frontier").and_then(Json::as_u64) != Some(wire::WIRE_VERSION) {
            return Err(corrupt("wrong frontier version"));
        }
        let found = header
            .get("fingerprint")
            .and_then(|s| s.as_str())
            .and_then(parse_hex64)
            .ok_or_else(|| corrupt("bad fingerprint field"))?;
        if found != fingerprint {
            return Err(FrontierError::Fatal(ShardError::CheckpointMismatch {
                expected: fingerprint,
                found,
            }));
        }
        let recorded_axes: Vec<String> = header
            .get("groups")
            .and_then(Json::as_arr)
            .map(|items| {
                items
                    .iter()
                    .filter_map(|s| s.as_str().map(str::to_string))
                    .collect()
            })
            .ok_or_else(|| corrupt("bad groups field"))?;
        let requested: Vec<&str> = axes.iter().map(|a| a.name()).collect();
        if recorded_axes != requested {
            return Err(FrontierError::Fatal(ShardError::Checkpoint {
                message: format!(
                    "frontier was merged with group axes {recorded_axes:?} but this run \
                     requests {requested:?}; merged partials are gone, so the groups \
                     cannot be rebuilt — use a fresh checkpoint directory"
                ),
            }));
        }
        let merged_shards = header
            .get("merged_shards")
            .and_then(Json::as_u64)
            .and_then(|v| usize::try_from(v).ok())
            .ok_or_else(|| corrupt("bad merged_shards field"))?;
        let digest_line = lines.next().ok_or_else(|| corrupt("missing digest"))?;
        let digest = Json::parse(digest_line)
            .and_then(|v| wire::digest_from(v.req("digest")?))
            .map_err(FrontierError::Corrupt)?;
        let mut frontier = Frontier::empty(axes);
        frontier.merged_shards = merged_shards;
        frontier.digest = digest;
        for line in lines {
            let v = Json::parse(line).map_err(FrontierError::Corrupt)?;
            let axis_name = v
                .get("axis")
                .and_then(|a| a.as_str())
                .ok_or_else(|| corrupt("bad group axis"))?;
            let axis = GroupAxis::parse(axis_name).ok_or_else(|| corrupt("unknown group axis"))?;
            let key = v
                .get("key")
                .and_then(|k| k.as_str())
                .ok_or_else(|| corrupt("bad group key"))?;
            let digest = wire::digest_from(
                v.get("digest")
                    .ok_or_else(|| corrupt("missing group digest"))?,
            )
            .map_err(FrontierError::Corrupt)?;
            let gd = frontier
                .grouped
                .iter_mut()
                .find(|gd| gd.axis == axis)
                .ok_or_else(|| corrupt("group line for unrequested axis"))?;
            gd.groups.push((key.to_string(), digest));
        }
        Ok(frontier)
    }
}

enum FrontierError {
    /// The file is unusable; resume cold.
    Corrupt(String),
    /// The file is intact but belongs to a different run; surface it.
    Fatal(ShardError),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frontier() -> Frontier {
        let axes = [GroupAxis::Strategy, GroupAxis::EnergyBudget];
        let mut frontier = Frontier::empty(&axes);
        frontier.merged_shards = 3;
        frontier.digest.scenarios = 12;
        frontier.digest.runs = 24;
        frontier.digest.energy_nj = 0.1 + 0.2; // a non-round double
        let mut g = FleetDigest::new();
        g.scenarios = 6;
        frontier.grouped[0]
            .groups
            .push(("ACE+FLEX".to_string(), g.clone()));
        frontier.grouped[0]
            .groups
            .push(("SONIC".to_string(), g.clone()));
        frontier.grouped[1]
            .groups
            .push(("unbounded".to_string(), g));
        frontier
    }

    #[test]
    fn frontier_round_trips_bit_identically() {
        let dir = std::env::temp_dir().join(format!("ehdl-ckpt-test-{}", std::process::id()));
        let store = CheckpointStore::open(&dir).unwrap();
        let frontier = sample_frontier();
        let axes = [GroupAxis::Strategy, GroupAxis::EnergyBudget];
        store.save_frontier(&frontier, 0xfeed).unwrap();
        let back = store.load_frontier(0xfeed, &axes).unwrap().unwrap();
        assert_eq!(back, frontier);

        // A different fingerprint is a typed mismatch, not a cold start.
        assert!(matches!(
            store.load_frontier(0xbeef, &axes),
            Err(ShardError::CheckpointMismatch {
                expected: 0xbeef,
                found: 0xfeed
            })
        ));
        // Different group axes on the same sweep: typed checkpoint error.
        assert!(matches!(
            store.load_frontier(0xfeed, &[GroupAxis::Board]),
            Err(ShardError::Checkpoint { .. })
        ));
        // A truncated frontier is a cold start, not a crash.
        let path = store.frontier_path();
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert_eq!(store.load_frontier(0xfeed, &axes).unwrap(), None);
        // No frontier at all is a cold start.
        fs::remove_file(&path).unwrap();
        assert_eq!(store.load_frontier(0xfeed, &axes).unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn clear_heartbeats_removes_only_orphaned_heartbeat_files() {
        let dir = std::env::temp_dir().join(format!("ehdl-ckpt-hb-test-{}", std::process::id()));
        let store = CheckpointStore::open(&dir).unwrap();
        store.write_heartbeat(0, "{\"done\":1}").unwrap();
        store.write_heartbeat(17, "{\"done\":4}").unwrap();
        fs::write(store.job_path(), b"{}\n").unwrap();
        assert!(store.heartbeat_path(0).exists());
        assert!(store.heartbeat_path(17).exists());

        store.clear_heartbeats();
        assert!(!store.heartbeat_path(0).exists());
        assert!(!store.heartbeat_path(17).exists());
        // Everything that is not a heartbeat survives.
        assert!(store.job_path().exists());
        // Idempotent, and a missing directory is a no-op.
        store.clear_heartbeats();
        fs::remove_dir_all(&dir).unwrap();
        store.clear_heartbeats();
    }
}
