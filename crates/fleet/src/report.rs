//! Deterministic fleet reports and percentile aggregation.

use crate::metrics::ResilienceTally;
use core::fmt;
use ehdl::ehsim::IntegrityTally;
use ehdl::Strategy;

/// Nearest-rank percentile of an **ascending-sorted** slice.
///
/// `p` is in `[0, 100]`. Returns `None` on an empty slice — an empty
/// sample set has no percentiles, and the old silent `0.0` let "no runs
/// completed" masquerade as "zero latency". The nearest-rank definition
/// picks an actual sample (never interpolates), so the result is
/// bit-stable regardless of how the samples were produced.
pub fn percentile(sorted: &[f64], p: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.clamp(1, sorted.len()) - 1])
}

/// Everything measured for one scenario: the accuracy of its deployment
/// and the folded counters of its intermittent runs.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// The scenario's stable name (`workload/env/strategy/board#seed`).
    pub name: String,
    /// Workload name.
    pub workload: &'static str,
    /// Environment name.
    pub environment: String,
    /// Strategy run.
    pub strategy: Strategy,
    /// Board spec name.
    pub board: &'static str,
    /// Scenario seed.
    pub seed: u64,
    /// Quantized-model accuracy over the scenario's dataset slice.
    pub accuracy: f64,
    /// Intermittent runs attempted.
    pub runs: u32,
    /// Runs whose inference finished.
    pub completed_runs: u32,
    /// Runs aborted by the per-run energy budget
    /// (`ExecutorConfig::energy_budget_nj`).
    pub energy_limited_runs: u32,
    /// Power failures (reboots) across all runs.
    pub outages: u64,
    /// Restores performed after outages.
    pub restores: u64,
    /// On-demand checkpoints taken.
    pub ondemand_checkpoints: u64,
    /// Ops executed, including re-execution after rollbacks.
    pub executed_ops: u64,
    /// Ops whose work was lost to rollbacks.
    pub wasted_ops: u64,
    /// Total energy drawn from the capacitor, in nanojoules.
    pub energy_nj: f64,
    /// Seconds spent computing across all runs.
    pub active_seconds: f64,
    /// Seconds spent dark, charging, across all runs.
    pub charging_seconds: f64,
    /// End-to-end wall-clock latency of each **completed** run, in
    /// milliseconds, ascending.
    pub latencies_ms: Vec<f64>,
    /// Fault-injection resilience counters folded from this scenario's
    /// runs. All-zero on fault-free sweeps.
    pub resilience: ResilienceTally,
    /// Checkpoint-payload integrity counters folded from this
    /// scenario's runs. All-zero unless bit-flips were armed or a
    /// non-`None` integrity scheme ran.
    pub integrity: IntegrityTally,
}

impl ScenarioReport {
    /// Fraction of runs that completed.
    pub fn completion_rate(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            f64::from(self.completed_runs) / f64::from(self.runs)
        }
    }

    /// Forward progress: the fraction of executed ops that were not
    /// rolled back (1.0 when nothing executed — an empty program makes
    /// trivial progress).
    pub fn forward_progress(&self) -> f64 {
        if self.executed_ops == 0 {
            1.0
        } else {
            (self.executed_ops - self.wasted_ops) as f64 / self.executed_ops as f64
        }
    }

    /// Median completed-run latency in milliseconds (`None` when no run
    /// completed).
    pub fn p50_ms(&self) -> Option<f64> {
        percentile(&self.latencies_ms, 50.0)
    }

    /// 90th-percentile completed-run latency in milliseconds (`None`
    /// when no run completed).
    pub fn p90_ms(&self) -> Option<f64> {
        percentile(&self.latencies_ms, 90.0)
    }

    /// 99th-percentile completed-run latency in milliseconds (`None`
    /// when no run completed).
    pub fn p99_ms(&self) -> Option<f64> {
        percentile(&self.latencies_ms, 99.0)
    }
}

/// The deterministic fold of a whole matrix: one [`ScenarioReport`] per
/// scenario, in matrix order.
///
/// Two runs of the same matrix produce equal (`==`) reports regardless
/// of worker count or thread interleaving: every per-scenario fold
/// happens inside a single worker in run order, and the fleet-level fold
/// walks scenarios in matrix order.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Per-scenario reports, in matrix order.
    pub scenarios: Vec<ScenarioReport>,
}

impl FleetReport {
    /// Number of scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// `true` if the report covers no scenarios.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Total intermittent runs attempted.
    pub fn total_runs(&self) -> u64 {
        self.scenarios.iter().map(|s| u64::from(s.runs)).sum()
    }

    /// Total runs that completed.
    pub fn completed_runs(&self) -> u64 {
        self.scenarios
            .iter()
            .map(|s| u64::from(s.completed_runs))
            .sum()
    }

    /// Total power failures across the fleet.
    pub fn total_outages(&self) -> u64 {
        self.scenarios.iter().map(|s| s.outages).sum()
    }

    /// Total energy drawn across the fleet, in millijoules.
    pub fn total_energy_mj(&self) -> f64 {
        self.scenarios.iter().map(|s| s.energy_nj).sum::<f64>() * 1e-6
    }

    /// Mean scenario accuracy (unweighted; 0.0 on an empty report).
    pub fn mean_accuracy(&self) -> f64 {
        if self.scenarios.is_empty() {
            0.0
        } else {
            self.scenarios.iter().map(|s| s.accuracy).sum::<f64>() / self.scenarios.len() as f64
        }
    }

    /// All completed-run latencies across the fleet, ascending.
    pub fn latencies_ms(&self) -> Vec<f64> {
        let mut all: Vec<f64> = self
            .scenarios
            .iter()
            .flat_map(|s| s.latencies_ms.iter().copied())
            .collect();
        all.sort_by(f64::total_cmp);
        all
    }

    /// Fleet-wide latency percentile in milliseconds over completed
    /// runs (`None` when nothing completed).
    pub fn latency_percentile_ms(&self, p: f64) -> Option<f64> {
        percentile(&self.latencies_ms(), p)
    }

    /// One summed [`ResilienceTally`] per strategy, in first-appearance
    /// (matrix) order — which checkpointing discipline actually
    /// survives injected faults, straight off the default report.
    pub fn resilience_by_strategy(&self) -> Vec<(Strategy, ResilienceTally)> {
        let mut groups: Vec<(Strategy, ResilienceTally)> = Vec::new();
        for s in &self.scenarios {
            match groups.iter_mut().find(|(st, _)| *st == s.strategy) {
                Some((_, tally)) => tally.merge(&s.resilience),
                None => groups.push((s.strategy, s.resilience)),
            }
        }
        groups
    }

    /// Approximate bytes this dense report retains: per-scenario
    /// structs, their owned strings and every per-run latency sample —
    /// the linear growth the digest sinks exist to avoid.
    pub fn memory_bytes(&self) -> usize {
        let per_scenario: usize = self
            .scenarios
            .iter()
            .map(|s| {
                core::mem::size_of::<ScenarioReport>()
                    + s.name.capacity()
                    + s.environment.capacity()
                    + s.latencies_ms.capacity() * core::mem::size_of::<f64>()
            })
            .sum();
        core::mem::size_of::<Self>() + per_scenario
    }
}

impl fmt::Display for FleetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "== fleet: {} scenarios, {}/{} runs completed, {} outages, {:.3} mJ ==",
            self.len(),
            self.completed_runs(),
            self.total_runs(),
            self.total_outages(),
            self.total_energy_mj()
        )?;
        writeln!(
            f,
            "{:<44} {:>6} {:>5} {:>7} {:>8} {:>9} {:>9} {:>9}",
            "scenario", "acc", "done", "reboots", "progress", "p50 ms", "p90 ms", "p99 ms"
        )?;
        for s in &self.scenarios {
            writeln!(
                f,
                "{:<44} {:>5.1}% {:>2}/{:<2} {:>7} {:>7.1}% {:>9.2} {:>9.2} {:>9.2}",
                s.name,
                s.accuracy * 100.0,
                s.completed_runs,
                s.runs,
                s.outages,
                s.forward_progress() * 100.0,
                s.p50_ms().unwrap_or(0.0),
                s.p90_ms().unwrap_or(0.0),
                s.p99_ms().unwrap_or(0.0)
            )?;
        }
        let lat = self.latencies_ms();
        writeln!(
            f,
            "fleet latency: p50 {:.2} ms, p90 {:.2} ms, p99 {:.2} ms over {} completed runs",
            percentile(&lat, 50.0).unwrap_or(0.0),
            percentile(&lat, 90.0).unwrap_or(0.0),
            percentile(&lat, 99.0).unwrap_or(0.0),
            lat.len()
        )?;
        let groups = self.resilience_by_strategy();
        if groups.iter().any(|(_, t)| t.faulted_runs > 0) {
            writeln!(
                f,
                "{:<12} {:>9} {:>9} {:>8} {:>7} {:>6} {:>8} {:>7}",
                "resilience",
                "recovered",
                "faulted",
                "resets",
                "tears",
                "sags",
                "corrupt",
                "silent"
            )?;
            for (strategy, t) in &groups {
                writeln!(
                    f,
                    "{:<12} {:>4}/{:<4} {:>8.1}% {:>8} {:>7} {:>6} {:>8} {:>7}",
                    strategy.name(),
                    t.recovered_runs,
                    t.faulted_runs,
                    t.recovery_rate() * 100.0,
                    t.spurious_resets,
                    t.torn_commits,
                    t.sag_ops,
                    t.corrupt_restores,
                    t.silent_corruptions
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The textbook nearest-rank definition, written independently of
    /// the production code path.
    fn reference_percentile(samples: &[f64], p: f64) -> Option<f64> {
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        if sorted.is_empty() {
            return None;
        }
        let n = sorted.len();
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        Some(sorted[rank.max(1).min(n) - 1])
    }

    fn splitmix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn percentile_matches_sorted_reference_implementation() {
        // Deterministic pseudo-random sample sets of many sizes.
        for n in [1usize, 2, 3, 7, 10, 99, 100, 101, 1000] {
            let samples: Vec<f64> = (0..n)
                .map(|i| splitmix(i as u64 ^ (n as u64) << 32) as f64 / 1e12)
                .collect();
            let mut sorted = samples.clone();
            sorted.sort_by(f64::total_cmp);
            for p in [0.0, 1.0, 25.0, 50.0, 90.0, 99.0, 100.0] {
                assert_eq!(
                    percentile(&sorted, p),
                    reference_percentile(&samples, p),
                    "n={n} p={p}"
                );
            }
        }
    }

    #[test]
    fn percentile_small_cases_by_hand() {
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile(&[5.0], 50.0), Some(5.0));
        assert_eq!(percentile(&[5.0], 99.0), Some(5.0));
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&s, 50.0), Some(2.0)); // rank ceil(0.5*4)=2
        assert_eq!(percentile(&s, 75.0), Some(3.0));
        assert_eq!(percentile(&s, 76.0), Some(4.0));
        assert_eq!(percentile(&s, 0.0), Some(1.0)); // clamped to rank 1
        assert_eq!(percentile(&s, 100.0), Some(4.0));
    }

    fn tiny_report(latencies_ms: Vec<f64>) -> ScenarioReport {
        ScenarioReport {
            name: "har/bench_supply/ACE+FLEX/MSP430FR5994#0".into(),
            workload: "har",
            environment: "bench_supply".into(),
            strategy: Strategy::Flex,
            board: "MSP430FR5994",
            seed: 0,
            accuracy: 0.5,
            runs: latencies_ms.len() as u32 + 1,
            completed_runs: latencies_ms.len() as u32,
            energy_limited_runs: 0,
            outages: 3,
            restores: 3,
            ondemand_checkpoints: 2,
            executed_ops: 100,
            wasted_ops: 25,
            energy_nj: 1e6,
            active_seconds: 0.1,
            charging_seconds: 0.2,
            latencies_ms,
            resilience: ResilienceTally::default(),
            integrity: IntegrityTally::default(),
        }
    }

    #[test]
    fn scenario_derived_metrics() {
        let r = tiny_report(vec![1.0, 2.0, 3.0]);
        assert!((r.forward_progress() - 0.75).abs() < 1e-12);
        assert!((r.completion_rate() - 0.75).abs() < 1e-12);
        assert_eq!(r.p50_ms(), Some(2.0));
        assert_eq!(r.p99_ms(), Some(3.0));
        let empty = ScenarioReport {
            executed_ops: 0,
            wasted_ops: 0,
            runs: 0,
            completed_runs: 0,
            ..tiny_report(vec![])
        };
        assert_eq!(empty.forward_progress(), 1.0);
        assert_eq!(empty.completion_rate(), 0.0);
        assert_eq!(empty.p50_ms(), None, "no completed runs, no percentile");
    }

    #[test]
    fn fleet_aggregates_fold_across_scenarios() {
        let report = FleetReport {
            scenarios: vec![tiny_report(vec![4.0, 6.0]), tiny_report(vec![1.0, 9.0])],
        };
        assert_eq!(report.len(), 2);
        assert_eq!(report.total_runs(), 6);
        assert_eq!(report.completed_runs(), 4);
        assert_eq!(report.total_outages(), 6);
        // 2 × 1e6 nJ = 2 mJ.
        assert!((report.total_energy_mj() - 2.0).abs() < 1e-12);
        assert_eq!(report.latencies_ms(), vec![1.0, 4.0, 6.0, 9.0]);
        assert_eq!(report.latency_percentile_ms(50.0), Some(4.0));
        assert!((report.mean_accuracy() - 0.5).abs() < 1e-12);
        let text = report.to_string();
        assert!(text.contains("fleet latency"));
        assert!(text.contains("ACE+FLEX"));
    }

    #[test]
    fn resilience_footer_appears_only_on_faulted_fleets() {
        // A fault-free fleet renders no resilience table.
        let clean = FleetReport {
            scenarios: vec![tiny_report(vec![1.0])],
        };
        assert!(!clean.to_string().contains("resilience"));

        // Two strategies, one faulted each: per-strategy rows in
        // first-appearance order.
        let mut a = tiny_report(vec![1.0]);
        a.resilience.faulted_runs = 4;
        a.resilience.recovered_runs = 3;
        a.resilience.spurious_resets = 9;
        let mut b = tiny_report(vec![2.0]);
        b.strategy = Strategy::Bare;
        b.resilience.faulted_runs = 2;
        b.resilience.recovered_runs = 2;
        let mut a2 = tiny_report(vec![3.0]);
        a2.resilience.faulted_runs = 1;
        a2.resilience.recovered_runs = 0;
        let report = FleetReport {
            scenarios: vec![a, b, a2],
        };
        let groups = report.resilience_by_strategy();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, Strategy::Flex);
        assert_eq!(groups[0].1.faulted_runs, 5);
        assert_eq!(groups[0].1.recovered_runs, 3);
        assert_eq!(groups[0].1.spurious_resets, 9);
        assert_eq!(groups[1].0, Strategy::Bare);
        assert!((groups[1].1.recovery_rate() - 1.0).abs() < 1e-12);
        let text = report.to_string();
        assert!(text.contains("resilience"), "{text}");
        assert!(text.contains("3/5"), "{text}");
        assert!(text.contains("2/2"), "{text}");
    }
}
