//! Sharded, resumable sweeps: one coordinator, many worker
//! subprocesses, a persisted merge frontier.
//!
//! A [`ShardCoordinator`] splits a [`ScenarioMatrix`] into contiguous
//! index ranges (shards), launches each shard in a worker subprocess
//! (the `fleet_shard_worker` binary, or any process that calls
//! [`worker_main`]), and stream-merges completed shards **in matrix
//! order**. Each worker runs its range through the crate's
//! [`DigestSink`](crate::DigestSink) machinery and writes one
//! checksummed record per scenario — the per-scenario digest partial,
//! floats as raw bits — so the coordinator replays exactly the merge
//! sequence an in-process sweep performs. Same matrix ⇒ the same
//! [`FleetDigest`], bit for bit, at any shard count and any worker
//! count, grouped digests included.
//!
//! After every merged shard the coordinator persists the frontier (the
//! cumulative digest over shards `0..k`) to the checkpoint directory.
//! Kill the process at any point and a rerun resumes from the last
//! merged prefix, reusing completed partials and re-running only the
//! shards that never finished. Worker failures retry with exponential
//! backoff and an optional per-shard wall-clock timeout; a shard that
//! exhausts its retries is reported as a failed range in the
//! [`ShardReport`] — the sweep keeps going and returns `Ok` with what
//! it could merge.
//!
//! ```no_run
//! use ehdl_fleet::{GroupAxis, ScenarioMatrix, ShardCoordinator};
//!
//! let matrix = ScenarioMatrix::new().seeds((0..1000).collect());
//! let report = ShardCoordinator::new(500)
//!     .concurrency(4)
//!     .checkpoint_dir("sweep.ckpt")
//!     .group_by(vec![GroupAxis::Strategy])
//!     .run(&matrix)?;
//! println!("{report}");
//! # Ok::<(), ehdl::Error>(())
//! ```

use crate::checkpoint::{CheckpointStore, Frontier};
use crate::metrics::{budget_label, FleetDigest, GroupAxis, GroupedDigest, MetricsSink, RunRecord};
use crate::runner::FleetRunner;
use crate::scenario::{Scenario, ScenarioMatrix};
use crate::wire::{self, hex64, Json, PartialHeader, PartialWriter, ShardRecord};
use core::fmt;
use ehdl::{Error, ShardError};
use std::fs;
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Environment variable for test-only fault injection in workers:
/// `kill:<shard>` aborts that shard mid-write on every attempt;
/// `kill-once:<shard>` aborts the first attempt only (a sentinel file
/// in the checkpoint directory remembers the trip). See
/// [`worker_main`].
pub const FAULT_ENV: &str = "EHDL_SHARD_FAULT";

/// One contiguous run of scenario indices assigned to a shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRange {
    /// The shard's index in the plan.
    pub shard: usize,
    /// First scenario index covered.
    pub start: usize,
    /// Number of scenarios covered.
    pub len: usize,
}

/// A shard that exhausted its retries, with the last failure's
/// diagnosis — how [`ShardReport::failed`] names the work a degraded
/// sweep is missing and why it is missing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailedShard {
    /// The shard's index in the plan.
    pub shard: usize,
    /// First scenario index covered.
    pub start: usize,
    /// Number of scenarios covered.
    pub len: usize,
    /// The final attempt's failure, including a bounded tail of
    /// whatever the worker wrote to stderr.
    pub error: String,
}

/// What went wrong (or got retried) during a sharded sweep — one entry
/// per retry, timeout, spawn failure or permanent failure, in the
/// order the coordinator observed them. An all-green sweep has none.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardEventKind {
    /// An attempt failed; a backed-off retry was scheduled.
    Retry,
    /// A worker exceeded the per-shard timeout and was killed.
    Timeout,
    /// The worker subprocess could not be spawned.
    SpawnFailed,
    /// The shard exhausted its retries and was abandoned.
    Failed,
}

impl ShardEventKind {
    /// Stable lower-case name (`retry`, `timeout`, `spawn_failed`,
    /// `failed`).
    pub fn name(&self) -> &'static str {
        match self {
            ShardEventKind::Retry => "retry",
            ShardEventKind::Timeout => "timeout",
            ShardEventKind::SpawnFailed => "spawn_failed",
            ShardEventKind::Failed => "failed",
        }
    }
}

/// One structured entry in [`ShardReport::events`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardEvent {
    /// The shard the event concerns.
    pub shard: usize,
    /// Failures of this shard so far, this one included (so the first
    /// retry of a shard carries `attempt: 1`).
    pub attempt: u32,
    /// What happened.
    pub kind: ShardEventKind,
    /// The failure message, including any bounded stderr tail.
    pub detail: String,
}

/// What a sharded sweep produced. When [`failed`](Self::failed) is
/// empty the digest covers the whole matrix and is bit-identical to an
/// in-process [`DigestSink`](crate::DigestSink) run; otherwise it
/// covers the merged prefix (shards before the first permanently
/// failed one), the completed partials past the gap stay in the
/// checkpoint directory, and a rerun after fixing the cause resumes
/// from exactly there.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardReport {
    /// The cumulative digest over every merged shard, in matrix order.
    pub digest: FleetDigest,
    /// One grouped digest per requested axis, in request order.
    pub grouped: Vec<GroupedDigest>,
    /// Shards in the plan.
    pub shards: usize,
    /// Shards merged into [`digest`](Self::digest) (a prefix of the
    /// plan).
    pub merged_shards: usize,
    /// Scenarios in the matrix.
    pub total_scenarios: usize,
    /// Shards satisfied from the checkpoint directory (the resumed
    /// frontier plus reused completed partials) instead of fresh
    /// worker runs.
    pub resumed_shards: usize,
    /// Worker retry attempts performed across the sweep.
    pub retries: u64,
    /// Shards that exhausted their retries, with the scenario range
    /// each one covered and its final failure message.
    pub failed: Vec<FailedShard>,
    /// Every retry/timeout/spawn-failure/abandonment the coordinator
    /// observed, in order. Empty for an all-green sweep.
    pub events: Vec<ShardEvent>,
}

impl ShardReport {
    /// `true` when every shard merged — the digest covers the whole
    /// matrix.
    pub fn is_complete(&self) -> bool {
        self.failed.is_empty() && self.merged_shards == self.shards
    }

    /// The grouped digest for one axis, if it was requested.
    pub fn group(&self, axis: GroupAxis) -> Option<&GroupedDigest> {
        self.grouped.iter().find(|gd| gd.axis == axis)
    }
}

impl fmt::Display for ShardReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "== shard sweep: {}/{} shards merged ({}/{} scenarios), {} resumed, {} retries ==",
            self.merged_shards,
            self.shards,
            self.digest.scenarios,
            self.total_scenarios,
            self.resumed_shards,
            self.retries
        )?;
        for failed in &self.failed {
            writeln!(
                f,
                "FAILED shard {}: scenarios {}..{} not merged: {}",
                failed.shard,
                failed.start,
                failed.start + failed.len,
                failed.error
            )?;
        }
        write!(f, "{}", self.digest)?;
        for gd in &self.grouped {
            write!(f, "{gd}")?;
        }
        Ok(())
    }
}

// --------------------------------------------------------- coordinator

/// Splits a matrix into shards, fans them out across worker
/// subprocesses, and stream-merges the results behind a persisted
/// frontier. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct ShardCoordinator {
    shard_size: usize,
    concurrency: usize,
    worker_threads: usize,
    retries: u32,
    backoff: Duration,
    backoff_seed: u64,
    timeout: Option<Duration>,
    checkpoint_dir: Option<PathBuf>,
    group_by: Vec<GroupAxis>,
    worker: Option<(PathBuf, Vec<String>)>,
    progress: bool,
}

impl ShardCoordinator {
    /// A coordinator assigning `shard_size` consecutive scenarios per
    /// shard. Defaults: 2 concurrent workers with 2 threads each, 2
    /// retries with a 250 ms doubling backoff, no per-shard timeout,
    /// a throwaway checkpoint directory under the system temp dir, no
    /// grouping, and the `fleet_shard_worker` binary found next to the
    /// current executable.
    pub fn new(shard_size: usize) -> Self {
        ShardCoordinator {
            shard_size,
            concurrency: 2,
            worker_threads: 2,
            retries: 2,
            backoff: Duration::from_millis(250),
            backoff_seed: 0,
            timeout: None,
            checkpoint_dir: None,
            group_by: Vec::new(),
            worker: None,
            progress: false,
        }
    }

    /// Prints a throttled (~1 s) progress line to stderr while the
    /// sweep runs: shards merged, scenarios done (live workers counted
    /// via their heartbeat files), throughput and an ETA. Telemetry
    /// only — the report is identical with it on or off.
    pub fn progress(mut self, progress: bool) -> Self {
        self.progress = progress;
        self
    }

    /// Maximum worker subprocesses alive at once.
    pub fn concurrency(mut self, workers: usize) -> Self {
        self.concurrency = workers.max(1);
        self
    }

    /// Threads each worker's in-process [`FleetRunner`] uses.
    pub fn worker_threads(mut self, threads: usize) -> Self {
        self.worker_threads = threads.max(1);
        self
    }

    /// Retry attempts per shard after its first failure (so a shard
    /// runs at most `1 + retries` times).
    pub fn retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Initial retry backoff; doubles per subsequent attempt, then a
    /// deterministic per-(seed, shard, attempt) jitter scales each
    /// delay into `[50%, 100%)` of its exponential slot (see
    /// [`retry_backoff`]) so simultaneous failures never retry in
    /// lockstep.
    pub fn backoff(mut self, backoff: Duration) -> Self {
        self.backoff = backoff;
        self
    }

    /// Seed of the deterministic retry jitter. The same seed replays
    /// the exact same backoff schedule — shard for shard, attempt for
    /// attempt — so flake reproductions are bit-faithful timing-wise
    /// too. Defaults to 0.
    pub fn backoff_seed(mut self, seed: u64) -> Self {
        self.backoff_seed = seed;
        self
    }

    /// Wall-clock budget per shard attempt; a worker running longer is
    /// killed and the attempt counts as a failure.
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Where partials and the merge frontier persist. A rerun pointed
    /// at the same directory (same matrix, same shard size) resumes
    /// from the last merged prefix. Without one, the sweep uses a
    /// throwaway temp directory and cannot be resumed.
    pub fn checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Grouped digests to accumulate alongside the cumulative one —
    /// the same axes, keys and bit-exact values as in-process
    /// [`GroupBySink`](crate::GroupBySink)s over the whole matrix.
    pub fn group_by(mut self, axes: Vec<GroupAxis>) -> Self {
        self.group_by = axes;
        self
    }

    /// Overrides the worker command: `exe` is launched as
    /// `exe <args...> --job <job.json> --shard <n>` and must end up in
    /// [`worker_main`]. This is how a test binary, bench or example
    /// acts as its own worker.
    pub fn worker_command(mut self, exe: impl Into<PathBuf>, args: Vec<String>) -> Self {
        self.worker = Some((exe.into(), args));
        self
    }

    /// Runs the sweep.
    ///
    /// # Errors
    ///
    /// [`ShardError::BadPlan`] for an unrunnable plan (zero shard
    /// size, empty matrix, shard larger than the matrix),
    /// [`Error::Config`](ehdl::Error::Config) for invalid executor
    /// tunables, [`ShardError::Protocol`] for a matrix with no wire
    /// form, [`ShardError::CheckpointMismatch`] /
    /// [`ShardError::Checkpoint`] for an unusable checkpoint
    /// directory, and [`ShardError::Spawn`] when no worker binary can
    /// be found. Worker *failures* are not errors: they retry, and a
    /// shard that exhausts retries degrades the report instead
    /// (see [`ShardReport::failed`]).
    pub fn run(&self, matrix: &ScenarioMatrix) -> Result<ShardReport, Error> {
        let total = matrix.len();
        if self.shard_size == 0 {
            return Err(ShardError::BadPlan {
                message: "shard size is zero".to_string(),
            }
            .into());
        }
        if total == 0 {
            return Err(ShardError::BadPlan {
                message: "the matrix expands to zero scenarios (an axis is empty)".to_string(),
            }
            .into());
        }
        if self.shard_size > total {
            return Err(ShardError::BadPlan {
                message: format!(
                    "shard size {} exceeds the {total}-scenario matrix; shrink the shards \
                     or run in-process",
                    self.shard_size
                ),
            }
            .into());
        }
        // Fail on invalid executor tunables here, not in every worker.
        matrix.executor.validate().map_err(Error::from)?;
        for nj in matrix.budgets.iter().flatten() {
            let mut config = matrix.executor.clone();
            config.energy_budget_nj = Some(*nj);
            config.validate().map_err(Error::from)?;
        }
        let matrix_json = wire::matrix_json(matrix)?;
        let fingerprint = wire::fingerprint(&matrix_json, self.shard_size);
        let worker = self.resolve_worker()?;
        let (dir, throwaway) = match &self.checkpoint_dir {
            Some(dir) => (dir.clone(), false),
            None => (
                std::env::temp_dir().join(format!(
                    "ehdl-shard-{}-{}",
                    hex64(fingerprint),
                    std::process::id()
                )),
                true,
            ),
        };
        let store = CheckpointStore::open(&dir)?;
        let result = self.drive(matrix, &matrix_json, fingerprint, &store, &worker, total);
        if throwaway {
            let _ = fs::remove_dir_all(&dir);
        }
        result
    }

    fn resolve_worker(&self) -> Result<(PathBuf, Vec<String>), ShardError> {
        if let Some((exe, args)) = &self.worker {
            return Ok((exe.clone(), args.clone()));
        }
        let name = format!("fleet_shard_worker{}", std::env::consts::EXE_SUFFIX);
        let exe = std::env::current_exe().map_err(|e| ShardError::Spawn {
            shard: usize::MAX,
            message: format!("could not locate the current executable: {e}"),
        })?;
        // Next to the current binary, or one level up (test binaries
        // live in target/<profile>/deps/).
        let mut candidates = Vec::new();
        if let Some(dir) = exe.parent() {
            candidates.push(dir.join(&name));
            if let Some(parent) = dir.parent() {
                candidates.push(parent.join(&name));
            }
        }
        candidates
            .iter()
            .find(|c| c.is_file())
            .map(|c| (c.clone(), Vec::new()))
            .ok_or_else(|| ShardError::Spawn {
                shard: usize::MAX,
                message: format!(
                    "no {name} binary next to {}; build it or set worker_command()",
                    exe.display()
                ),
            })
    }

    fn plan(&self, total: usize) -> Vec<ShardRange> {
        (0..total.div_ceil(self.shard_size))
            .map(|shard| {
                let start = shard * self.shard_size;
                ShardRange {
                    shard,
                    start,
                    len: self.shard_size.min(total - start),
                }
            })
            .collect()
    }

    fn header_for(&self, range: ShardRange, fingerprint: u64, runs: u32) -> PartialHeader {
        PartialHeader {
            shard: range.shard as u64,
            start: range.start as u64,
            len: range.len as u64,
            fingerprint,
            runs,
        }
    }

    #[allow(clippy::too_many_lines)]
    fn drive(
        &self,
        matrix: &ScenarioMatrix,
        matrix_json: &str,
        fingerprint: u64,
        store: &CheckpointStore,
        worker: &(PathBuf, Vec<String>),
        total: usize,
    ) -> Result<ShardReport, Error> {
        let plan = self.plan(total);
        let n_shards = plan.len();
        // A previous coordinator killed mid-sweep leaves orphaned
        // heartbeat files behind; drop them before the progress line
        // starts reading heartbeats, or dead workers would inflate it.
        store.clear_heartbeats();
        let mut frontier = store
            .load_frontier(fingerprint, &self.group_by)?
            .unwrap_or_else(|| Frontier::empty(&self.group_by));
        frontier.merged_shards = frontier.merged_shards.min(n_shards);
        let mut resumed = frontier.merged_shards;
        store.write_job(&format!(
            "{{\"ehdl_shard_job\":{},\"fingerprint\":\"{}\",\"shard_size\":{},\
             \"threads\":{},\"matrix\":{matrix_json}}}",
            wire::WIRE_VERSION,
            hex64(fingerprint),
            self.shard_size,
            self.worker_threads
        ))?;

        let now = Instant::now();
        let mut states: Vec<ShardState> = Vec::with_capacity(n_shards);
        for range in &plan {
            if range.shard < frontier.merged_shards {
                states.push(ShardState::Merged);
            } else if store
                .load_partial(
                    range.shard,
                    self.header_for(*range, fingerprint, matrix.runs),
                )?
                .is_some()
            {
                // A completed partial from a killed run: reuse it.
                resumed += 1;
                states.push(ShardState::Ready);
            } else {
                states.push(ShardState::Pending {
                    attempt: 0,
                    ready_at: now,
                });
            }
        }

        let mut retries = 0u64;
        let mut events: Vec<ShardEvent> = Vec::new();
        let mut fatal: Option<Error> = None;
        let mut last_progress = Instant::now();
        'sweep: loop {
            // 1. Reap finished / timed-out workers.
            for shard in 0..n_shards {
                let ShardState::Running {
                    child,
                    started,
                    attempt,
                } = &mut states[shard]
                else {
                    continue;
                };
                let attempt = *attempt;
                match child.try_wait() {
                    Ok(Some(status)) if status.success() => {
                        let header = self.header_for(plan[shard], fingerprint, matrix.runs);
                        match store.load_partial(shard, header) {
                            Err(e) => {
                                fatal = Some(e.into());
                                break 'sweep;
                            }
                            Ok(Some(_)) => states[shard] = ShardState::Ready,
                            Ok(None) => {
                                // Exit 0 but no valid partial: protocol
                                // breach; retry like any failure.
                                states[shard] = self.next_attempt(
                                    shard,
                                    attempt,
                                    &mut retries,
                                    &mut events,
                                    "worker exited successfully without a valid partial"
                                        .to_string(),
                                );
                            }
                        }
                    }
                    Ok(Some(status)) => {
                        let detail = drain_stderr(child);
                        states[shard] = self.next_attempt(
                            shard,
                            attempt,
                            &mut retries,
                            &mut events,
                            format!("worker exited with {status}{detail}"),
                        );
                    }
                    Ok(None) => {
                        if let Some(timeout) = self.timeout {
                            if started.elapsed() > timeout {
                                let _ = child.kill();
                                let _ = child.wait();
                                // The tail of what the worker managed to
                                // say before the kill often names the
                                // hang.
                                let detail = drain_stderr(child);
                                let message = format!(
                                    "worker exceeded the {timeout:?} shard timeout{detail}"
                                );
                                events.push(ShardEvent {
                                    shard,
                                    attempt: attempt + 1,
                                    kind: ShardEventKind::Timeout,
                                    detail: message.clone(),
                                });
                                states[shard] = self.next_attempt(
                                    shard,
                                    attempt,
                                    &mut retries,
                                    &mut events,
                                    message,
                                );
                            }
                        }
                    }
                    Err(e) => {
                        let _ = child.kill();
                        let _ = child.wait();
                        states[shard] = self.next_attempt(
                            shard,
                            attempt,
                            &mut retries,
                            &mut events,
                            format!("could not poll worker: {e}"),
                        );
                    }
                }
            }

            // 2. Merge the ready prefix, persisting the frontier as it
            //    advances. A failed shard blocks the frontier (later
            //    partials stay on disk for a post-fix resume), but
            //    execution of later shards continues regardless.
            while frontier.merged_shards < n_shards {
                let shard = frontier.merged_shards;
                if !matches!(states[shard], ShardState::Ready) {
                    break;
                }
                let header = self.header_for(plan[shard], fingerprint, matrix.runs);
                let records = match store.load_partial(shard, header) {
                    Err(e) => {
                        fatal = Some(e.into());
                        break 'sweep;
                    }
                    // Vanished or corrupted since validation: re-run it.
                    Ok(None) => {
                        states[shard] = ShardState::Pending {
                            attempt: 0,
                            ready_at: Instant::now(),
                        };
                        continue;
                    }
                    Ok(Some(records)) => records,
                };
                for record in &records {
                    frontier.digest.merge(&record.digest);
                    for gd in &mut frontier.grouped {
                        merge_group(gd, record);
                    }
                }
                states[shard] = ShardState::Merged;
                frontier.merged_shards += 1;
                let advanced = store
                    .save_frontier(&frontier, fingerprint)
                    .and_then(|()| store.remove_partial(shard));
                store.remove_heartbeat(shard);
                if let Err(e) = advanced {
                    fatal = Some(e.into());
                    break 'sweep;
                }
            }

            // 3. Launch pending shards up to the concurrency cap.
            let mut live = states
                .iter()
                .filter(|s| matches!(s, ShardState::Running { .. }))
                .count();
            for (shard, state) in states.iter_mut().enumerate() {
                if live >= self.concurrency {
                    break;
                }
                let ShardState::Pending { attempt, ready_at } = *state else {
                    continue;
                };
                if ready_at > Instant::now() {
                    continue;
                }
                match self.spawn(worker, store, shard) {
                    Ok(child) => {
                        *state = ShardState::Running {
                            child,
                            started: Instant::now(),
                            attempt,
                        };
                        live += 1;
                    }
                    Err(message) => {
                        events.push(ShardEvent {
                            shard,
                            attempt: attempt + 1,
                            kind: ShardEventKind::SpawnFailed,
                            detail: message.clone(),
                        });
                        *state =
                            self.next_attempt(shard, attempt, &mut retries, &mut events, message);
                    }
                }
            }

            // 4. Progress telemetry (stderr only; never affects the
            //    report).
            if self.progress && last_progress.elapsed() >= Duration::from_secs(1) {
                last_progress = Instant::now();
                self.emit_progress(&plan, &states, &frontier, store, total, now);
            }

            // 5. Done when nothing is running or waiting to run.
            let active = states
                .iter()
                .any(|s| matches!(s, ShardState::Running { .. } | ShardState::Pending { .. }));
            if !active {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        if self.progress {
            self.emit_progress(&plan, &states, &frontier, store, total, now);
        }
        if let Some(e) = fatal {
            return Err(self.abandon(&mut states, e));
        }

        let failed: Vec<FailedShard> = states
            .iter()
            .zip(&plan)
            .filter_map(|(s, range)| match s {
                ShardState::Failed { error } => Some(FailedShard {
                    shard: range.shard,
                    start: range.start,
                    len: range.len,
                    error: error.clone(),
                }),
                _ => None,
            })
            .collect();
        Ok(ShardReport {
            digest: frontier.digest,
            grouped: frontier.grouped,
            shards: n_shards,
            merged_shards: frontier.merged_shards,
            total_scenarios: total,
            resumed_shards: resumed,
            retries,
            failed,
            events,
        })
    }

    /// One stderr progress line: merged shards, scenarios done (live
    /// workers read via their heartbeats, finished-but-unmerged shards
    /// counted whole), throughput over the sweep so far and an ETA.
    fn emit_progress(
        &self,
        plan: &[ShardRange],
        states: &[ShardState],
        frontier: &Frontier,
        store: &CheckpointStore,
        total: usize,
        started: Instant,
    ) {
        let mut done = frontier.digest.scenarios;
        let mut running = 0usize;
        for (state, range) in states.iter().zip(plan) {
            match state {
                ShardState::Ready => done += range.len as u64,
                ShardState::Running { .. } => {
                    running += 1;
                    done += heartbeat_done(store, range.shard);
                }
                _ => {}
            }
        }
        let elapsed = started.elapsed().as_secs_f64();
        let rate = if elapsed > 0.0 {
            done as f64 / elapsed
        } else {
            0.0
        };
        let eta = if rate > 0.0 && done > 0 {
            let remaining = (total as u64).saturating_sub(done) as f64;
            format!("{:.0}s", remaining / rate)
        } else {
            "?".to_string()
        };
        eprintln!(
            "ehdl-fleet: progress {}/{} shards merged, {done}/{total} scenarios \
             ({rate:.1}/s, ETA {eta}, {running} running)",
            frontier.merged_shards,
            plan.len()
        );
    }

    /// Books one failed attempt: schedules a backed-off retry, or
    /// marks the shard permanently failed once retries are exhausted.
    /// Either way the failure lands in the event log, and a permanent
    /// failure keeps its message for [`ShardReport::failed`].
    fn next_attempt(
        &self,
        shard: usize,
        attempt: u32,
        retries: &mut u64,
        events: &mut Vec<ShardEvent>,
        message: String,
    ) -> ShardState {
        let failures = attempt + 1;
        if failures > self.retries {
            eprintln!("ehdl-fleet: shard {shard} failed permanently: {message}");
            events.push(ShardEvent {
                shard,
                attempt: failures,
                kind: ShardEventKind::Failed,
                detail: message.clone(),
            });
            ShardState::Failed { error: message }
        } else {
            *retries += 1;
            events.push(ShardEvent {
                shard,
                attempt: failures,
                kind: ShardEventKind::Retry,
                detail: message,
            });
            ShardState::Pending {
                attempt: failures,
                ready_at: Instant::now()
                    + retry_backoff(self.backoff, self.backoff_seed, shard, failures),
            }
        }
    }

    fn spawn(
        &self,
        (exe, prefix): &(PathBuf, Vec<String>),
        store: &CheckpointStore,
        shard: usize,
    ) -> Result<Child, String> {
        Command::new(exe)
            .args(prefix)
            .arg("--job")
            .arg(store.job_path())
            .arg("--shard")
            .arg(shard.to_string())
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .map_err(|e| format!("could not spawn {}: {e}", exe.display()))
    }

    /// Kills every live worker before surfacing a fatal error, so a
    /// failed coordinator never leaks subprocesses.
    fn abandon(&self, states: &mut [ShardState], error: Error) -> Error {
        for state in states {
            if let ShardState::Running { child, .. } = state {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
        error
    }
}

enum ShardState {
    Pending {
        attempt: u32,
        ready_at: Instant,
    },
    Running {
        child: Child,
        started: Instant,
        attempt: u32,
    },
    Ready,
    Merged,
    Failed {
        error: String,
    },
}

/// Reads the `done` field of a running shard's heartbeat; 0 when the
/// worker has not published one (or it is mid-rename).
fn heartbeat_done(store: &CheckpointStore, shard: usize) -> u64 {
    fs::read_to_string(store.heartbeat_path(shard))
        .ok()
        .and_then(|text| Json::parse(text.trim_end()).ok())
        .and_then(|v| v.get("done").and_then(Json::as_u64))
        .unwrap_or(0)
}

/// The retry delay for one failed shard attempt: the classic doubling
/// schedule (`base * 2^(attempt-1)`) scaled by a deterministic jitter
/// in `[0.5, 1.0)` drawn from SplitMix64 over `(seed, shard, attempt)`.
/// A pure function — the same inputs always produce the same delay, so
/// a seeded sweep's retry timing replays exactly, while distinct shards
/// failing at the same instant still spread out instead of thundering
/// back in lockstep.
pub fn retry_backoff(base: Duration, seed: u64, shard: usize, attempt: u32) -> Duration {
    let exponential = base * 2u32.saturating_pow(attempt.saturating_sub(1));
    let mut z = seed
        ^ (shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ u64::from(attempt).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    // 53 uniform bits → [0, 1), halved and offset into [0.5, 1.0).
    let jitter = 0.5 + (z >> 11) as f64 / 9_007_199_254_740_992.0 / 2.0;
    exponential.mul_f64(jitter)
}

/// Replays one scenario record into a grouped digest exactly as the
/// in-process [`GroupBySink`](crate::GroupBySink) would.
fn merge_group(gd: &mut GroupedDigest, record: &ShardRecord) {
    let key = match gd.axis {
        GroupAxis::Environment => &record.environment,
        GroupAxis::Strategy => &record.strategy,
        GroupAxis::Board => &record.board,
        GroupAxis::Workload => &record.workload,
        GroupAxis::EnergyBudget => &record.budget,
        GroupAxis::Fault => &record.fault,
        GroupAxis::Topology => &record.topology,
        GroupAxis::Integrity => &record.integrity,
    };
    match gd.groups.iter_mut().find(|(k, _)| k == key) {
        Some((_, digest)) => digest.merge(&record.digest),
        None => gd.groups.push((key.clone(), record.digest.clone())),
    }
}

/// The most stderr a failure message carries. The *tail* is what
/// matters — a panicking worker prints its diagnosis last — and an
/// unbounded capture would balloon retry events and failed-shard
/// reports when a worker loops on stderr.
const STDERR_TAIL_BYTES: usize = 2048;

/// Reads whatever the worker said on stderr, as a `: `-prefixed detail
/// string (empty when it said nothing), keeping at most the last
/// [`STDERR_TAIL_BYTES`] bytes.
fn drain_stderr(child: &mut Child) -> String {
    let mut detail = String::new();
    if let Some(mut stderr) = child.stderr.take() {
        let _ = stderr.read_to_string(&mut detail);
    }
    let mut detail = detail.trim();
    let truncated = detail.len() > STDERR_TAIL_BYTES;
    if truncated {
        let mut cut = detail.len() - STDERR_TAIL_BYTES;
        while !detail.is_char_boundary(cut) {
            cut += 1;
        }
        detail = &detail[cut..];
    }
    if detail.is_empty() {
        String::new()
    } else if truncated {
        format!(": [stderr tail] …{detail}")
    } else {
        format!(": {detail}")
    }
}

// -------------------------------------------------------------- worker

/// The worker half of the shard protocol — call this from a binary's
/// `main` with its command-line arguments (the shipped
/// `fleet_shard_worker` binary is exactly that, and benches/examples
/// reuse it to act as their own workers).
///
/// Arguments: `--job <job.json> --shard <n>`, plus `--stdout` to
/// stream the partial to standard output instead of the checkpoint
/// directory. The worker rebuilds the matrix from the job file,
/// verifies the sweep fingerprint, runs scenarios
/// `n*shard_size .. (n+1)*shard_size` through an in-process
/// [`FleetRunner`], and publishes the checksummed partial atomically
/// (`.tmp`, fsync, rename).
///
/// Fault injection for tests rides on a `--fault <spec>` argument
/// (passed through [`ShardCoordinator::worker_command`] prefix args)
/// or, failing that, the [`FAULT_ENV`] environment variable.
///
/// # Errors
///
/// [`ShardError::Protocol`] for a missing/corrupt/mismatched job file
/// or bad arguments; whatever the in-process sweep surfaces otherwise.
pub fn worker_main(args: &[String]) -> Result<(), Error> {
    let proto = |message: String| -> Error {
        ShardError::Protocol {
            shard: usize::MAX,
            message,
        }
        .into()
    };
    let mut job_path: Option<PathBuf> = None;
    let mut shard: Option<usize> = None;
    let mut to_stdout = false;
    let mut fault_spec: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--job" => job_path = it.next().map(PathBuf::from),
            "--shard" => {
                shard = it.next().and_then(|s| s.parse().ok());
                if shard.is_none() {
                    return Err(proto("--shard wants an unsigned integer".to_string()));
                }
            }
            "--stdout" => to_stdout = true,
            "--fault" => fault_spec = it.next().cloned(),
            other => return Err(proto(format!("unknown worker argument {other:?}"))),
        }
    }
    let fault_spec = fault_spec.or_else(|| std::env::var(FAULT_ENV).ok());
    let job_path = job_path.ok_or_else(|| proto("missing --job <path>".to_string()))?;
    let shard = shard.ok_or_else(|| proto("missing --shard <n>".to_string()))?;

    let job_text = fs::read_to_string(&job_path)
        .map_err(|e| proto(format!("could not read job {}: {e}", job_path.display())))?;
    let job =
        Json::parse(job_text.trim_end()).map_err(|e| proto(format!("malformed job file: {e}")))?;
    if job.get("ehdl_shard_job").and_then(Json::as_u64) != Some(wire::WIRE_VERSION) {
        return Err(proto("job file has the wrong version".to_string()));
    }
    let shard_size = job
        .get("shard_size")
        .and_then(Json::as_usize)
        .filter(|&s| s > 0)
        .ok_or_else(|| proto("job file has a bad shard_size".to_string()))?;
    let threads = job
        .get("threads")
        .and_then(Json::as_usize)
        .unwrap_or(1)
        .max(1);
    let claimed = job
        .get("fingerprint")
        .and_then(|s| s.as_str())
        .and_then(wire::parse_hex64)
        .ok_or_else(|| proto("job file has a bad fingerprint".to_string()))?;
    let matrix = job
        .req("matrix")
        .and_then(wire::matrix_from)
        .map_err(|e| proto(format!("job matrix does not parse: {e}")))?;
    // The round trip is canonical, so re-serializing the parsed matrix
    // must reproduce the fingerprint — this catches a corrupt or
    // hand-edited job before any scenario runs.
    let fingerprint = wire::fingerprint(&wire::matrix_json(&matrix)?, shard_size);
    if fingerprint != claimed {
        return Err(proto(format!(
            "job fingerprint {} does not match its matrix ({})",
            hex64(claimed),
            hex64(fingerprint)
        )));
    }
    let total = matrix.len();
    let n_shards = total.div_ceil(shard_size);
    if shard >= n_shards {
        return Err(Error::Shard(ShardError::Protocol {
            shard,
            message: format!("the plan has only {n_shards} shards"),
        }));
    }
    let start = shard * shard_size;
    let len = shard_size.min(total - start);
    let header = PartialHeader {
        shard: shard as u64,
        start: start as u64,
        len: len as u64,
        fingerprint,
        runs: matrix.runs,
    };
    let dir = job_path.parent().unwrap_or(Path::new(".")).to_path_buf();
    let die_after = fault_trip(fault_spec.as_deref(), &dir, shard, len);
    let runner = FleetRunner::new(threads);

    if to_stdout {
        let sink =
            ShardRecordSink::new(BufWriter::new(std::io::stdout()), header, die_after, None)?;
        let (records, mut writer) =
            runner.run_range_with_sink(&matrix, start..start + len, sink)?;
        writer.flush().map_err(Error::from)?;
        debug_assert_eq!(records, len as u64);
        return Ok(());
    }
    let store = CheckpointStore::open(&dir)?;
    let heartbeat = Heartbeat {
        store: store.clone(),
        shard,
        start: start as u64,
        len: len as u64,
        started: Instant::now(),
        last: None,
    };
    let tmp = dir.join(format!("partial-{shard:06}.ehsp.tmp"));
    let final_path = dir.join(format!("partial-{shard:06}.ehsp"));
    let file = fs::File::create(&tmp).map_err(Error::from)?;
    let sink = ShardRecordSink::new(BufWriter::new(file), header, die_after, Some(heartbeat))?;
    let (records, writer) = runner.run_range_with_sink(&matrix, start..start + len, sink)?;
    debug_assert_eq!(records, len as u64);
    let file = writer
        .into_inner()
        .map_err(|e| Error::from(e.into_error()))?;
    file.sync_all().map_err(Error::from)?;
    drop(file);
    fs::rename(&tmp, &final_path).map_err(Error::from)?;
    store.remove_heartbeat(shard);
    println!("{{\"shard\":{shard},\"records\":{records}}}");
    Ok(())
}

/// Evaluates a fault spec for this shard: `Some(k)` means "abort
/// after writing k records". `kill-once` trips a sentinel file so only
/// the first attempt dies.
fn fault_trip(spec: Option<&str>, dir: &Path, shard: usize, len: usize) -> Option<u64> {
    let (mode, target) = spec?.split_once(':')?;
    if target.parse() != Ok(shard) {
        return None;
    }
    match mode {
        "kill" => Some(len as u64 / 2),
        "kill-once" => {
            let sentinel = dir.join(format!("fault-{shard}.tripped"));
            if sentinel.exists() {
                None
            } else {
                let _ = fs::write(&sentinel, b"tripped\n");
                Some(len as u64 / 2)
            }
        }
        _ => None,
    }
}

/// The worker-side sink: streams one wire record per scenario through
/// a [`PartialWriter`]. Opening and folding mirror
/// [`DigestSink`](crate::DigestSink) exactly — the record carries the
/// very partial an in-process sweep would merge.
struct ShardRecordSink<W: Write + Send> {
    writer: PartialWriter<W>,
    /// Test-only fault injection: abort the process after this many
    /// records, leaving a truncated temp file like a real mid-shard
    /// kill would.
    die_after: Option<u64>,
    written: u64,
    heartbeat: Option<Heartbeat>,
}

/// Live-progress publication for one worker: a throttled
/// `heartbeat-<shard>.json` in the checkpoint directory, written with
/// the same atomic rename as every other checkpoint file so the
/// coordinator never reads a torn line. Pure telemetry — write errors
/// are swallowed.
struct Heartbeat {
    store: CheckpointStore,
    shard: usize,
    start: u64,
    len: u64,
    started: Instant,
    last: Option<Instant>,
}

impl Heartbeat {
    const INTERVAL: Duration = Duration::from_millis(200);

    fn beat(&mut self, done: u64) {
        if self
            .last
            .is_some_and(|last| last.elapsed() < Self::INTERVAL)
        {
            return;
        }
        self.last = Some(Instant::now());
        let elapsed = self.started.elapsed().as_secs_f64();
        let rate = if elapsed > 0.0 {
            done as f64 / elapsed
        } else {
            0.0
        };
        let _ = self.store.write_heartbeat(
            self.shard,
            &format!(
                "{{\"shard\":{},\"start\":{},\"len\":{},\"done\":{done},\
                 \"elapsed_s\":{elapsed:.3},\"scenarios_per_sec\":{rate:.3}}}",
                self.shard, self.start, self.len
            ),
        );
    }
}

impl<W: Write + Send> ShardRecordSink<W> {
    fn new(
        writer: W,
        header: PartialHeader,
        die_after: Option<u64>,
        heartbeat: Option<Heartbeat>,
    ) -> Result<Self, Error> {
        Ok(ShardRecordSink {
            writer: PartialWriter::new(writer, header).map_err(Error::from)?,
            die_after,
            written: 0,
            heartbeat,
        })
    }
}

impl<W: Write + Send> MetricsSink for ShardRecordSink<W> {
    type Partial = ShardRecord;
    /// Records written, plus the inner writer for fsync-and-rename.
    type Report = (u64, W);

    fn open(&self, scenario: &Scenario, accuracy: f64) -> ShardRecord {
        let mut digest = FleetDigest::new();
        digest.scenarios = 1;
        digest.accuracy.record(accuracy);
        ShardRecord {
            index: scenario.index as u64,
            workload: scenario.workload.name().to_string(),
            environment: scenario.environment.name().to_string(),
            strategy: scenario.strategy.name().to_string(),
            board: scenario.board.name().to_string(),
            budget: budget_label(scenario.energy_budget_nj),
            fault: scenario.fault.label(),
            topology: scenario.topology.label(),
            integrity: scenario.integrity.label().to_string(),
            digest,
        }
    }

    fn fold(partial: &mut ShardRecord, record: &RunRecord<'_>) {
        partial.digest.fold_run(record);
    }

    fn fold_slo(partial: &mut ShardRecord, outcome: &ehdl_netsim::SloOutcome) {
        partial.digest.slo.fold_outcome(outcome);
    }

    fn merge(&mut self, partial: ShardRecord) -> Result<(), Error> {
        self.writer.write_record(&partial).map_err(Error::from)?;
        self.written += 1;
        if let Some(hb) = self.heartbeat.as_mut() {
            hb.beat(self.written);
        }
        if self.die_after == Some(self.written) {
            // Simulate a mid-shard kill: leave a half-written line
            // behind and die without unwinding.
            let _ = self.writer.write_raw(b"{\"scenario\":9");
            std::process::abort();
        }
        Ok(())
    }

    fn finish(self) -> Result<(u64, W), Error> {
        let writer = self.writer.finish().map_err(Error::from)?;
        Ok((self.written, writer))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_backoff_is_a_pure_function_of_its_inputs() {
        let base = Duration::from_millis(250);
        for shard in [0usize, 1, 7, 500] {
            for attempt in 1..=5u32 {
                assert_eq!(
                    retry_backoff(base, 42, shard, attempt),
                    retry_backoff(base, 42, shard, attempt),
                    "shard {shard} attempt {attempt}"
                );
            }
        }
        // A different seed replays a different (but equally fixed)
        // schedule.
        assert_ne!(retry_backoff(base, 42, 3, 2), retry_backoff(base, 43, 3, 2));
    }

    #[test]
    fn retry_backoff_jitters_within_its_exponential_slot() {
        let base = Duration::from_millis(100);
        for attempt in 1..=6u32 {
            let slot = base * 2u32.pow(attempt - 1);
            for shard in 0..50usize {
                let d = retry_backoff(base, 7, shard, attempt);
                assert!(d >= slot / 2, "attempt {attempt} shard {shard}: {d:?}");
                assert!(d < slot, "attempt {attempt} shard {shard}: {d:?}");
            }
        }
    }

    #[test]
    fn retry_backoff_spreads_simultaneous_failures() {
        // Distinct shards failing at the same attempt must not share a
        // delay (that lockstep is exactly what jitter exists to break).
        let base = Duration::from_millis(250);
        let delays: Vec<Duration> = (0..8usize)
            .map(|shard| retry_backoff(base, 0, shard, 1))
            .collect();
        let mut unique = delays.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), delays.len(), "{delays:?}");
    }
}
