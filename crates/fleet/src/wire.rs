//! The shard wire format: bit-exact JSONL serialization for matrix
//! specs, per-scenario digest partials and checkpoint frontiers.
//!
//! Everything a worker sends back must reproduce the in-process sweep
//! *bit for bit*, so floats never round-trip through decimal: every
//! `f64` travels as the 16-hex-digit image of [`f64::to_bits`] (and
//! `f32` as 8 digits). Integers are decimal; [`crate::StatsDigest`]
//! bins are sparse `[bin, count]` pairs. A shard partial is a JSONL
//! file — one versioned header line, one record line per scenario in
//! matrix order, and a footer carrying the record count plus an
//! FNV-1a 64 checksum of every preceding byte — so a truncated or
//! corrupted partial is detected before it can poison a merge.
//!
//! The container ships no JSON dependency, so this module carries its
//! own writer (string building, like [`crate::JsonlSink`]) and a small
//! recursive-descent parser ([`Json`]).

use crate::digest::StatsDigest;
use crate::metrics::{json_escape, FleetDigest, ResilienceTally, SloTally};
use crate::profile::{CacheCounters, CacheStats, PhaseProfile};
use crate::scenario::{ScenarioMatrix, Workload};
use ehdl::ehsim::{
    Capacitor, Environment, ExecPhase, ExecutorConfig, FaultSpec, Harvester, Integrity,
    IntegrityTally, WearCurve,
};
use ehdl::{BoardSpec, CalibrationConfig, ShardError, Strategy};
use ehdl_netsim::NetworkTopology;
use std::fmt::Write as _;
use std::io::{self, Write};

/// Wire format version stamped into partial headers and frontiers.
/// Version 2 added the fault-injection axis to matrix specs, the
/// `fault` label to shard records, the `resilience` block to digests,
/// and eviction counts to cache counters. Version 3 added the network
/// topology axis to matrix specs, the `topology` label to shard
/// records, burst lengths to fault specs, and the `slo` block to
/// digests. Version 4 added the checkpoint-integrity axis to matrix
/// specs, the `integrity` label to shard records, the `integrity`
/// block to digests, bit-flip rates and wear curves to fault specs,
/// and poll retries to topologies.
pub(crate) const WIRE_VERSION: u64 = 4;

// ------------------------------------------------------------- hashing

/// Incremental FNV-1a 64 — the checksum of partials and frontiers.
/// Not cryptographic; it guards against truncation and bit rot, not
/// adversaries.
#[derive(Debug, Clone)]
pub(crate) struct Fnv64(u64);

impl Fnv64 {
    pub(crate) fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

/// Fingerprint of a (matrix, shard size) pair: the identity a
/// checkpoint directory belongs to. Computed over the canonical matrix
/// JSON so any axis, seed, budget, calibration or executor change —
/// or a different shard split — reads as a different sweep.
pub(crate) fn fingerprint(matrix_json: &str, shard_size: usize) -> u64 {
    let mut h = Fnv64::new();
    h.write(matrix_json.as_bytes());
    h.write(&(shard_size as u64).to_le_bytes());
    h.finish()
}

// ------------------------------------------------------------ hex bits

pub(crate) fn hex64(v: u64) -> String {
    format!("{v:016x}")
}

pub(crate) fn parse_hex64(s: &str) -> Option<u64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

fn f64_hex(v: f64) -> String {
    hex64(v.to_bits())
}

fn f32_hex(v: f32) -> String {
    format!("{:08x}", v.to_bits())
}

// ----------------------------------------------------------- the parser

/// A parsed JSON value, from the dependency-free parser behind every
/// fleet wire format. Public so tooling (CI validation, bench
/// harnesses) can read the fleet's own exports — shard partials,
/// digests, heartbeats, probe traces — without another JSON crate.
///
/// Numbers keep their raw token: the fleet wire carries unsigned
/// integers and hex-encoded float bits (use [`Json::as_f64_bits`]),
/// while observability exports (JSONL events, Chrome traces,
/// heartbeats) carry plain decimals (use [`Json::as_f64`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw unparsed token.
    Num(String),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as members in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one complete JSON document (no trailing bytes).
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax error.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }

    /// An object member by key, `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A required object member, as an error message otherwise.
    ///
    /// # Errors
    ///
    /// Names the missing field.
    pub fn req(&self, key: &str) -> Result<&Json, String> {
        self.get(key)
            .ok_or_else(|| format!("missing field {key:?}"))
    }

    /// The string payload, `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as an unsigned integer, `None` otherwise.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// [`Json::as_u64`] narrowed to `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The number as a plain decimal `f64` — the encoding the
    /// observability exports use. `None` for non-numbers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The array's items, `None` for non-arrays.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// An `f64` carried as 16 hex digits of its bit pattern.
    pub fn as_f64_bits(&self) -> Option<f64> {
        self.as_str().and_then(parse_hex64).map(f64::from_bits)
    }

    /// An `f32` carried as 8 hex digits of its bit pattern.
    fn as_f32_bits(&self) -> Option<f32> {
        let s = self.as_str()?;
        if s.len() != 8 {
            return None;
        }
        u32::from_str_radix(s, 16).ok().map(f32::from_bits)
    }
}

/// Pulls a required field through one of the typed accessors above.
macro_rules! field {
    ($obj:expr, $key:literal, $as:ident) => {
        $obj.req($key)?
            .$as()
            .ok_or_else(|| concat!("bad field ", $key).to_string())
    };
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at offset {}",
                byte as char, self.pos
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected a value at offset {start}"));
        }
        let raw = core::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-UTF-8 number".to_string())?;
        Ok(Json::Num(raw.to_string()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = Vec::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return String::from_utf8(out).map_err(|_| "non-UTF-8 string".to_string());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push(b'"'),
                        b'\\' => out.push(b'\\'),
                        b'/' => out.push(b'/'),
                        b'b' => out.push(0x08),
                        b'f' => out.push(0x0c),
                        b'n' => out.push(b'\n'),
                        b'r' => out.push(b'\r'),
                        b't' => out.push(b'\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| core::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            // The writer only emits \u for control
                            // characters; reject surrogates outright.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| "surrogate \\u escape".to_string())?;
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        }
                        _ => return Err(format!("bad escape \\{}", escape as char)),
                    }
                }
                Some(&b) => {
                    out.push(b);
                    self.pos += 1;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected , or ] at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected , or }} at offset {}", self.pos)),
            }
        }
    }
}

// ----------------------------------------------------------- digests

fn stats_json(out: &mut String, d: &StatsDigest) {
    let (count, sum, min, max, bins) = d.raw_parts();
    let _ = write!(
        out,
        "{{\"count\":{count},\"sum\":\"{}\",\"min\":\"{}\",\"max\":\"{}\",\"bins\":[",
        f64_hex(sum),
        f64_hex(min),
        f64_hex(max)
    );
    let mut first = true;
    for (bin, &n) in bins.iter().enumerate() {
        if n != 0 {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "[{bin},{n}]");
        }
    }
    out.push_str("]}");
}

fn stats_from(v: &Json) -> Result<StatsDigest, String> {
    let count = field!(v, "count", as_u64)?;
    let sum = field!(v, "sum", as_f64_bits)?;
    let min = field!(v, "min", as_f64_bits)?;
    let max = field!(v, "max", as_f64_bits)?;
    let mut sparse = Vec::new();
    for pair in field!(v, "bins", as_arr)? {
        let pair = pair.as_arr().filter(|p| p.len() == 2);
        let (bin, n) = pair
            .and_then(|p| Some((p[0].as_usize()?, p[1].as_u64()?)))
            .ok_or_else(|| "bad bins entry".to_string())?;
        sparse.push((bin, n));
    }
    StatsDigest::from_raw_parts(count, sum, min, max, &sparse)
        .ok_or_else(|| "bin index out of range".to_string())
}

/// Serializes a [`PhaseProfile`] as one canonical JSON object: phase
/// digests (floats as bit-exact hex) in [`ExecPhase::ALL`] order, then
/// the three cache counters.
pub(crate) fn profile_json(p: &PhaseProfile) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\"phases\":{");
    for (i, phase) in ExecPhase::ALL.into_iter().enumerate() {
        if i != 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":", phase.name());
        stats_json(&mut out, p.digest(phase));
    }
    out.push_str("},\"caches\":{");
    for (i, (name, c)) in [
        ("plan", &p.caches.plan),
        ("trace", &p.caches.trace),
        ("deployment", &p.caches.deployment),
    ]
    .into_iter()
    .enumerate()
    {
        if i != 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\"{name}\":{{\"hits\":{},\"misses\":{},\"entries\":{},\"evictions\":{}}}",
            c.hits, c.misses, c.entries, c.evictions
        );
    }
    out.push_str("}}");
    out
}

fn cache_counters_from(v: &Json) -> Result<CacheCounters, String> {
    Ok(CacheCounters {
        hits: field!(v, "hits", as_u64)?,
        misses: field!(v, "misses", as_u64)?,
        entries: field!(v, "entries", as_u64)?,
        evictions: field!(v, "evictions", as_u64)?,
    })
}

/// Rebuilds a [`PhaseProfile`] from [`profile_json`]'s output —
/// bit-identical, digests included.
pub(crate) fn profile_from_json(text: &str) -> Result<PhaseProfile, String> {
    let v = Json::parse(text)?;
    let phases = v.req("phases")?;
    let mut profile = PhaseProfile::new();
    for phase in ExecPhase::ALL {
        let d = stats_from(phases.req(phase.name())?)?;
        profile.digest_replace(phase, d);
    }
    let caches = v.req("caches")?;
    profile.caches = CacheStats {
        plan: cache_counters_from(caches.req("plan")?)?,
        trace: cache_counters_from(caches.req("trace")?)?,
        deployment: cache_counters_from(caches.req("deployment")?)?,
    };
    Ok(profile)
}

/// Serializes a [`FleetDigest`] as one canonical JSON object.
pub(crate) fn digest_json(d: &FleetDigest) -> String {
    let mut out = String::with_capacity(512);
    let _ = write!(
        out,
        "{{\"scenarios\":{},\"runs\":{},\"completed_runs\":{},\"no_progress_runs\":{},\
         \"outage_limited_runs\":{},\"time_limited_runs\":{},\"energy_limited_runs\":{},\
         \"outages\":{},\"restores\":{},\"ondemand_checkpoints\":{},\
         \"executed_ops\":{},\"wasted_ops\":{},\
         \"energy_nj\":\"{}\",\"active_seconds\":\"{}\",\"charging_seconds\":\"{}\",\
         \"latency_ms\":",
        d.scenarios,
        d.runs,
        d.completed_runs,
        d.no_progress_runs,
        d.outage_limited_runs,
        d.time_limited_runs,
        d.energy_limited_runs,
        d.outages,
        d.restores,
        d.ondemand_checkpoints,
        d.executed_ops,
        d.wasted_ops,
        f64_hex(d.energy_nj),
        f64_hex(d.active_seconds),
        f64_hex(d.charging_seconds),
    );
    stats_json(&mut out, &d.latency_ms);
    out.push_str(",\"accuracy\":");
    stats_json(&mut out, &d.accuracy);
    out.push_str(",\"dark_s\":");
    stats_json(&mut out, &d.dark_s);
    let r = &d.resilience;
    let _ = write!(
        out,
        ",\"resilience\":{{\"faulted_runs\":{},\"recovered_runs\":{},\"spurious_resets\":{},\
         \"torn_commits\":{},\"sag_ops\":{},\"corrupt_restores\":{},\"cold_boots\":{},\
         \"detected_corruptions\":{},\"silent_corruptions\":{}}}",
        r.faulted_runs,
        r.recovered_runs,
        r.spurious_resets,
        r.torn_commits,
        r.sag_ops,
        r.corrupt_restores,
        r.cold_boots,
        r.detected_corruptions,
        r.silent_corruptions,
    );
    let s = &d.slo;
    let _ = write!(
        out,
        ",\"slo\":{{\"worlds\":{},\"devices\":{},\"polls\":{},\"served\":{},\
         \"missed_asleep\":{},\"missed_stale\":{},\"starved_devices\":{},\"staleness_s\":",
        s.worlds, s.devices, s.polls, s.served, s.missed_asleep, s.missed_stale, s.starved_devices,
    );
    stats_json(&mut out, &s.staleness_s);
    out.push('}');
    let i = &d.integrity;
    let _ = write!(
        out,
        ",\"integrity\":{{\"flips_injected\":{},\"flips_repaired\":{},\"flips_detected\":{},\
         \"silent_restores\":{},\"wear_max_commits\":{},\"ladder\":[{},{},{},{}]}}",
        i.flips_injected,
        i.flips_repaired,
        i.flips_detected,
        i.silent_restores,
        i.wear_max_commits,
        i.ladder[0],
        i.ladder[1],
        i.ladder[2],
        i.ladder[3],
    );
    out.push('}');
    out
}

fn integrity_from(v: &Json) -> Result<IntegrityTally, String> {
    let ladder_arr = field!(v, "ladder", as_arr)?;
    if ladder_arr.len() != 4 {
        return Err("ladder must have 4 rungs".to_string());
    }
    let mut ladder = [0u64; 4];
    for (slot, rung) in ladder.iter_mut().zip(ladder_arr) {
        *slot = rung.as_u64().ok_or_else(|| "bad ladder rung".to_string())?;
    }
    Ok(IntegrityTally {
        flips_injected: field!(v, "flips_injected", as_u64)?,
        flips_repaired: field!(v, "flips_repaired", as_u64)?,
        flips_detected: field!(v, "flips_detected", as_u64)?,
        silent_restores: field!(v, "silent_restores", as_u64)?,
        wear_max_commits: field!(v, "wear_max_commits", as_u64)?,
        ladder,
    })
}

fn slo_from(v: &Json) -> Result<SloTally, String> {
    Ok(SloTally {
        worlds: field!(v, "worlds", as_u64)?,
        devices: field!(v, "devices", as_u64)?,
        polls: field!(v, "polls", as_u64)?,
        served: field!(v, "served", as_u64)?,
        missed_asleep: field!(v, "missed_asleep", as_u64)?,
        missed_stale: field!(v, "missed_stale", as_u64)?,
        starved_devices: field!(v, "starved_devices", as_u64)?,
        staleness_s: stats_from(v.req("staleness_s")?)?,
    })
}

fn resilience_from(v: &Json) -> Result<ResilienceTally, String> {
    Ok(ResilienceTally {
        faulted_runs: field!(v, "faulted_runs", as_u64)?,
        recovered_runs: field!(v, "recovered_runs", as_u64)?,
        spurious_resets: field!(v, "spurious_resets", as_u64)?,
        torn_commits: field!(v, "torn_commits", as_u64)?,
        sag_ops: field!(v, "sag_ops", as_u64)?,
        corrupt_restores: field!(v, "corrupt_restores", as_u64)?,
        cold_boots: field!(v, "cold_boots", as_u64)?,
        detected_corruptions: field!(v, "detected_corruptions", as_u64)?,
        silent_corruptions: field!(v, "silent_corruptions", as_u64)?,
    })
}

/// Rebuilds a [`FleetDigest`] from [`digest_json`]'s output —
/// bit-identical, floats included.
pub(crate) fn digest_from(v: &Json) -> Result<FleetDigest, String> {
    Ok(FleetDigest {
        scenarios: field!(v, "scenarios", as_u64)?,
        runs: field!(v, "runs", as_u64)?,
        completed_runs: field!(v, "completed_runs", as_u64)?,
        no_progress_runs: field!(v, "no_progress_runs", as_u64)?,
        outage_limited_runs: field!(v, "outage_limited_runs", as_u64)?,
        time_limited_runs: field!(v, "time_limited_runs", as_u64)?,
        energy_limited_runs: field!(v, "energy_limited_runs", as_u64)?,
        outages: field!(v, "outages", as_u64)?,
        restores: field!(v, "restores", as_u64)?,
        ondemand_checkpoints: field!(v, "ondemand_checkpoints", as_u64)?,
        executed_ops: field!(v, "executed_ops", as_u64)?,
        wasted_ops: field!(v, "wasted_ops", as_u64)?,
        energy_nj: field!(v, "energy_nj", as_f64_bits)?,
        active_seconds: field!(v, "active_seconds", as_f64_bits)?,
        charging_seconds: field!(v, "charging_seconds", as_f64_bits)?,
        latency_ms: stats_from(v.req("latency_ms")?)?,
        accuracy: stats_from(v.req("accuracy")?)?,
        dark_s: stats_from(v.req("dark_s")?)?,
        resilience: resilience_from(v.req("resilience")?)?,
        slo: slo_from(v.req("slo")?)?,
        integrity: integrity_from(v.req("integrity")?)?,
    })
}

// ------------------------------------------------------------ records

/// One scenario's worth of wire data: its matrix index, the axis
/// labels every group-by needs, and the per-scenario digest partial
/// exactly as [`crate::DigestSink::open`] + fold produced it. The
/// coordinator replays these through the same merge sequence an
/// in-process sweep uses — which is what makes the sharded result
/// bit-identical at any shard count.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ShardRecord {
    pub index: u64,
    pub workload: String,
    pub environment: String,
    pub strategy: String,
    pub board: String,
    pub budget: String,
    pub fault: String,
    pub topology: String,
    pub integrity: String,
    pub digest: FleetDigest,
}

impl ShardRecord {
    pub(crate) fn to_line(&self) -> String {
        format!(
            "{{\"scenario\":{},\"workload\":\"{}\",\"environment\":\"{}\",\"strategy\":\"{}\",\
             \"board\":\"{}\",\"budget\":\"{}\",\"fault\":\"{}\",\"topology\":\"{}\",\
             \"integrity\":\"{}\",\"digest\":{}}}",
            self.index,
            json_escape(&self.workload),
            json_escape(&self.environment),
            json_escape(&self.strategy),
            json_escape(&self.board),
            json_escape(&self.budget),
            json_escape(&self.fault),
            json_escape(&self.topology),
            json_escape(&self.integrity),
            digest_json(&self.digest)
        )
    }

    pub(crate) fn from_line(line: &str) -> Result<ShardRecord, String> {
        let v = Json::parse(line)?;
        Ok(ShardRecord {
            index: field!(v, "scenario", as_u64)?,
            workload: field!(v, "workload", as_str)?.to_string(),
            environment: field!(v, "environment", as_str)?.to_string(),
            strategy: field!(v, "strategy", as_str)?.to_string(),
            board: field!(v, "board", as_str)?.to_string(),
            budget: field!(v, "budget", as_str)?.to_string(),
            fault: field!(v, "fault", as_str)?.to_string(),
            topology: field!(v, "topology", as_str)?.to_string(),
            integrity: field!(v, "integrity", as_str)?.to_string(),
            digest: digest_from(v.req("digest")?)?,
        })
    }
}

// ------------------------------------------------------ partial files

/// The first line of a shard partial: which shard of which sweep this
/// is, so a stale or foreign file can never merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PartialHeader {
    pub shard: u64,
    pub start: u64,
    pub len: u64,
    pub fingerprint: u64,
    pub runs: u32,
}

impl PartialHeader {
    fn to_line(self) -> String {
        format!(
            "{{\"ehdl_shard_partial\":{WIRE_VERSION},\"shard\":{},\"start\":{},\"len\":{},\
             \"fingerprint\":\"{}\",\"runs\":{}}}",
            self.shard,
            self.start,
            self.len,
            hex64(self.fingerprint),
            self.runs
        )
    }

    fn from_line(line: &str) -> Result<PartialHeader, String> {
        let v = Json::parse(line)?;
        let version = field!(v, "ehdl_shard_partial", as_u64)?;
        if version != WIRE_VERSION {
            return Err(format!("wire version {version}, expected {WIRE_VERSION}"));
        }
        Ok(PartialHeader {
            shard: field!(v, "shard", as_u64)?,
            start: field!(v, "start", as_u64)?,
            len: field!(v, "len", as_u64)?,
            fingerprint: v
                .req("fingerprint")?
                .as_str()
                .and_then(parse_hex64)
                .ok_or_else(|| "bad field fingerprint".to_string())?,
            runs: field!(v, "runs", as_u64)?
                .try_into()
                .map_err(|_| "runs out of range".to_string())?,
        })
    }
}

/// Streams a shard partial: header, records, checksummed footer. The
/// checksum covers every byte before the footer line, so any
/// truncation — mid-line or whole-line — fails verification.
#[derive(Debug)]
pub(crate) struct PartialWriter<W: Write> {
    writer: W,
    hash: Fnv64,
    records: u64,
}

impl<W: Write> PartialWriter<W> {
    pub(crate) fn new(writer: W, header: PartialHeader) -> io::Result<Self> {
        let mut this = PartialWriter {
            writer,
            hash: Fnv64::new(),
            records: 0,
        };
        this.line(&header.to_line())?;
        Ok(this)
    }

    fn line(&mut self, text: &str) -> io::Result<()> {
        self.hash.write(text.as_bytes());
        self.hash.write(b"\n");
        self.writer.write_all(text.as_bytes())?;
        self.writer.write_all(b"\n")
    }

    pub(crate) fn write_record(&mut self, record: &ShardRecord) -> io::Result<()> {
        self.records += 1;
        self.line(&record.to_line())
    }

    /// Writes raw bytes without checksumming them — test-only fault
    /// injection uses this to leave a convincingly truncated file.
    pub(crate) fn write_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.writer.write_all(bytes)?;
        self.writer.flush()
    }

    /// Writes the footer and flushes; hands the writer back for
    /// fsync-and-rename by the caller.
    pub(crate) fn finish(mut self) -> io::Result<W> {
        let footer = format!(
            "{{\"records\":{},\"checksum\":\"{}\"}}",
            self.records,
            hex64(self.hash.finish())
        );
        self.writer.write_all(footer.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        Ok(self.writer)
    }
}

/// Parses and verifies a complete shard partial: checksum, record
/// count, and record indices contiguous over the header's range.
/// Returns the header and the records in matrix order.
pub(crate) fn read_partial(text: &str) -> Result<(PartialHeader, Vec<ShardRecord>), String> {
    let body = text
        .strip_suffix('\n')
        .ok_or_else(|| "truncated (no trailing newline)".to_string())?;
    let footer_start = body.rfind('\n').map_or(0, |i| i + 1);
    let footer = Json::parse(&body[footer_start..]).map_err(|e| format!("bad footer: {e}"))?;
    let claimed_records = field!(footer, "records", as_u64)?;
    let claimed_checksum = footer
        .req("checksum")?
        .as_str()
        .and_then(parse_hex64)
        .ok_or_else(|| "bad field checksum".to_string())?;
    let mut hash = Fnv64::new();
    hash.write(&text.as_bytes()[..footer_start]);
    if hash.finish() != claimed_checksum {
        return Err("checksum mismatch".to_string());
    }
    let mut lines = text[..footer_start].lines();
    let header =
        PartialHeader::from_line(lines.next().ok_or_else(|| "missing header".to_string())?)?;
    let records: Vec<ShardRecord> = lines
        .map(ShardRecord::from_line)
        .collect::<Result<_, _>>()?;
    if records.len() as u64 != claimed_records || claimed_records != header.len {
        return Err(format!(
            "expected {} records, found {}",
            header.len,
            records.len()
        ));
    }
    for (i, record) in records.iter().enumerate() {
        if record.index != header.start + i as u64 {
            return Err(format!("record {} out of order: index {}", i, record.index));
        }
    }
    Ok((header, records))
}

// ------------------------------------------------------- matrix specs

/// Serializes a [`ScenarioMatrix`] as canonical single-line JSON — the
/// job spec workers rebuild their matrix from, and the byte string the
/// sweep [`fingerprint`] hashes. Canonical means the round trip
/// `matrix_from(parse(matrix_json(m)))` re-serializes to identical
/// bytes, which the worker exploits to verify its job file.
///
/// # Errors
///
/// [`ShardError::Protocol`] when the matrix contains a
/// [`BoardSpec::Custom`] board — a custom cost table has no wire form.
pub(crate) fn matrix_json(m: &ScenarioMatrix) -> Result<String, ShardError> {
    let mut out = String::with_capacity(1024);
    out.push_str("{\"environments\":[");
    for (i, env) in m.environments.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        environment_json(&mut out, env);
    }
    out.push_str("],\"strategies\":[");
    for (i, s) in m.strategies.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\"", s.name());
    }
    out.push_str("],\"boards\":[");
    for (i, b) in m.boards.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match b {
            BoardSpec::Msp430Fr5994 => out.push_str("\"MSP430FR5994\""),
            _ => {
                return Err(ShardError::Protocol {
                    shard: usize::MAX,
                    message: format!(
                        "board {:?} has no wire form; sharded sweeps support catalog boards only",
                        b.name()
                    ),
                })
            }
        }
    }
    out.push_str("],\"workloads\":[");
    for (i, w) in m.workloads.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let samples = match w {
            Workload::Mnist { samples } | Workload::Har { samples } | Workload::Okg { samples } => {
                samples
            }
        };
        let _ = write!(out, "{{\"kind\":\"{}\",\"samples\":{samples}}}", w.name());
    }
    out.push_str("],\"seeds\":[");
    for (i, seed) in m.seeds.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{seed}");
    }
    out.push_str("],\"budgets\":[");
    for (i, budget) in m.budgets.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match budget {
            None => out.push_str("null"),
            Some(nj) => {
                let _ = write!(out, "\"{}\"", f64_hex(*nj));
            }
        }
    }
    out.push_str("],\"faults\":[");
    for (i, f) in m.faults.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"seed\":{},\"reset_per_op\":\"{}\",\"sag_per_op\":\"{}\",\"sag_factor\":\"{}\",\
             \"tear_per_commit\":\"{}\",\"corrupt_per_restore\":\"{}\",\"burst_len\":{},\
             \"flip_per_commit_bit\":\"{}\",\"wear_endurance\":{}}}",
            f.seed,
            f64_hex(f.reset_per_op),
            f64_hex(f.sag_per_op),
            f64_hex(f.sag_factor),
            f64_hex(f.tear_per_commit),
            f64_hex(f.corrupt_per_restore),
            f.burst_len,
            f64_hex(f.flip_per_commit_bit),
            f.wear.endurance_commits,
        );
    }
    out.push_str("],\"topologies\":[");
    for (i, t) in m.topologies.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"devices\":{},\"spacing\":\"{}\",\"field_budget\":\"{}\",\
             \"poll_period_s\":\"{}\",\"poll_offset_s\":\"{}\",\"freshness_s\":\"{}\",\
             \"poll_retries\":{}}}",
            t.devices,
            f64_hex(t.spacing),
            f64_hex(t.field_budget),
            f64_hex(t.poll_period_s),
            f64_hex(t.poll_offset_s),
            f64_hex(t.freshness_s),
            t.poll_retries,
        );
    }
    out.push_str("],\"integrities\":[");
    for (i, scheme) in m.integrities.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\"", scheme.label());
    }
    let _ = write!(
        out,
        "],\"runs\":{},\"calibration\":{{\"samples\":{},\"percentile\":\"{}\"}},\"executor\":{{",
        m.runs,
        m.calibration.samples,
        f32_hex(m.calibration.percentile)
    );
    let e = &m.executor;
    let _ = write!(
        out,
        "\"max_outages\":{},\"stall_outages\":{},\"charge_step_s\":",
        e.max_outages, e.stall_outages
    );
    match e.charge_step_s {
        None => out.push_str("null"),
        Some(step) => {
            let _ = write!(out, "\"{}\"", f64_hex(step));
        }
    }
    let _ = write!(
        out,
        ",\"max_wall_seconds\":\"{}\",\"energy_budget_nj\":",
        f64_hex(e.max_wall_seconds)
    );
    match e.energy_budget_nj {
        None => out.push_str("null"),
        Some(nj) => {
            let _ = write!(out, "\"{}\"", f64_hex(nj));
        }
    }
    out.push_str("}}");
    Ok(out)
}

fn environment_json(out: &mut String, env: &Environment) {
    let c = env.capacitor();
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"capacitor\":{{\"farads\":\"{}\",\"v_max\":\"{}\",\
         \"v_on\":\"{}\",\"v_off\":\"{}\"}},\"harvester\":",
        json_escape(env.name()),
        f64_hex(c.farads()),
        f64_hex(c.v_max()),
        f64_hex(c.v_on()),
        f64_hex(c.v_off())
    );
    match env.harvester() {
        Harvester::Constant { watts } => {
            let _ = write!(
                out,
                "{{\"kind\":\"constant\",\"watts\":\"{}\"}}",
                f64_hex(*watts)
            );
        }
        Harvester::Square {
            watts,
            period_s,
            duty,
        } => {
            let _ = write!(
                out,
                "{{\"kind\":\"square\",\"watts\":\"{}\",\"period_s\":\"{}\",\"duty\":\"{}\"}}",
                f64_hex(*watts),
                f64_hex(*period_s),
                f64_hex(*duty)
            );
        }
        Harvester::Sine { watts, period_s } => {
            let _ = write!(
                out,
                "{{\"kind\":\"sine\",\"watts\":\"{}\",\"period_s\":\"{}\"}}",
                f64_hex(*watts),
                f64_hex(*period_s)
            );
        }
        Harvester::Bursts {
            watts,
            slot_s,
            p_on,
            seed,
        } => {
            let _ = write!(
                out,
                "{{\"kind\":\"bursts\",\"watts\":\"{}\",\"slot_s\":\"{}\",\
                 \"p_on\":\"{}\",\"seed\":{seed}}}",
                f64_hex(*watts),
                f64_hex(*slot_s),
                f64_hex(*p_on)
            );
        }
        Harvester::Trace { segments } => {
            out.push_str("{\"kind\":\"trace\",\"segments\":[");
            for (i, (duration, watts)) in segments.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[\"{}\",\"{}\"]", f64_hex(*duration), f64_hex(*watts));
            }
            out.push_str("]}");
        }
    }
    out.push('}');
}

fn opt_f64(v: &Json) -> Result<Option<f64>, String> {
    match v {
        Json::Null => Ok(None),
        _ => v
            .as_f64_bits()
            .map(Some)
            .ok_or_else(|| "expected null or f64 bits".to_string()),
    }
}

fn harvester_from(v: &Json) -> Result<Harvester, String> {
    match field!(v, "kind", as_str)? {
        "constant" => Ok(Harvester::Constant {
            watts: field!(v, "watts", as_f64_bits)?,
        }),
        "square" => Ok(Harvester::Square {
            watts: field!(v, "watts", as_f64_bits)?,
            period_s: field!(v, "period_s", as_f64_bits)?,
            duty: field!(v, "duty", as_f64_bits)?,
        }),
        "sine" => Ok(Harvester::Sine {
            watts: field!(v, "watts", as_f64_bits)?,
            period_s: field!(v, "period_s", as_f64_bits)?,
        }),
        "bursts" => Ok(Harvester::Bursts {
            watts: field!(v, "watts", as_f64_bits)?,
            slot_s: field!(v, "slot_s", as_f64_bits)?,
            p_on: field!(v, "p_on", as_f64_bits)?,
            seed: field!(v, "seed", as_u64)?,
        }),
        "trace" => {
            let mut segments = Vec::new();
            for pair in field!(v, "segments", as_arr)? {
                let pair = pair.as_arr().filter(|p| p.len() == 2);
                let segment = pair
                    .and_then(|p| Some((p[0].as_f64_bits()?, p[1].as_f64_bits()?)))
                    .ok_or_else(|| "bad trace segment".to_string())?;
                segments.push(segment);
            }
            Ok(Harvester::Trace { segments })
        }
        kind => Err(format!("unknown harvester kind {kind:?}")),
    }
}

fn environment_from(v: &Json) -> Result<Environment, String> {
    let c = v.req("capacitor")?;
    let capacitor = Capacitor::new(
        field!(c, "farads", as_f64_bits)?,
        field!(c, "v_max", as_f64_bits)?,
        field!(c, "v_on", as_f64_bits)?,
        field!(c, "v_off", as_f64_bits)?,
    );
    Ok(Environment::new(
        field!(v, "name", as_str)?.to_string(),
        harvester_from(v.req("harvester")?)?,
        capacitor,
    ))
}

/// Rebuilds a [`ScenarioMatrix`] from [`matrix_json`]'s output.
pub(crate) fn matrix_from(v: &Json) -> Result<ScenarioMatrix, String> {
    let mut environments = Vec::new();
    for env in field!(v, "environments", as_arr)? {
        environments.push(environment_from(env)?);
    }
    let mut strategies = Vec::new();
    for s in field!(v, "strategies", as_arr)? {
        let name = s.as_str().ok_or_else(|| "bad strategy".to_string())?;
        let strategy = Strategy::ALL
            .into_iter()
            .find(|st| st.name() == name)
            .ok_or_else(|| format!("unknown strategy {name:?}"))?;
        strategies.push(strategy);
    }
    let mut boards = Vec::new();
    for b in field!(v, "boards", as_arr)? {
        match b.as_str() {
            Some("MSP430FR5994") => boards.push(BoardSpec::Msp430Fr5994),
            other => return Err(format!("unknown board {other:?}")),
        }
    }
    let mut workloads = Vec::new();
    for w in field!(v, "workloads", as_arr)? {
        let samples = field!(w, "samples", as_usize)?;
        workloads.push(match field!(w, "kind", as_str)? {
            "mnist" => Workload::Mnist { samples },
            "har" => Workload::Har { samples },
            "okg" => Workload::Okg { samples },
            kind => return Err(format!("unknown workload kind {kind:?}")),
        });
    }
    let mut seeds = Vec::new();
    for s in field!(v, "seeds", as_arr)? {
        seeds.push(s.as_u64().ok_or_else(|| "bad seed".to_string())?);
    }
    let mut budgets = Vec::new();
    for b in field!(v, "budgets", as_arr)? {
        budgets.push(opt_f64(b)?);
    }
    let mut faults = Vec::new();
    for f in field!(v, "faults", as_arr)? {
        faults.push(FaultSpec {
            seed: field!(f, "seed", as_u64)?,
            reset_per_op: field!(f, "reset_per_op", as_f64_bits)?,
            sag_per_op: field!(f, "sag_per_op", as_f64_bits)?,
            sag_factor: field!(f, "sag_factor", as_f64_bits)?,
            tear_per_commit: field!(f, "tear_per_commit", as_f64_bits)?,
            corrupt_per_restore: field!(f, "corrupt_per_restore", as_f64_bits)?,
            burst_len: field!(f, "burst_len", as_u64)?
                .try_into()
                .map_err(|_| "burst_len out of range".to_string())?,
            flip_per_commit_bit: field!(f, "flip_per_commit_bit", as_f64_bits)?,
            wear: WearCurve {
                endurance_commits: field!(f, "wear_endurance", as_u64)?,
            },
        });
    }
    let mut topologies = Vec::new();
    for t in field!(v, "topologies", as_arr)? {
        let topology = NetworkTopology {
            devices: field!(t, "devices", as_u64)?
                .try_into()
                .map_err(|_| "devices out of range".to_string())?,
            spacing: field!(t, "spacing", as_f64_bits)?,
            field_budget: field!(t, "field_budget", as_f64_bits)?,
            poll_period_s: field!(t, "poll_period_s", as_f64_bits)?,
            poll_offset_s: field!(t, "poll_offset_s", as_f64_bits)?,
            freshness_s: field!(t, "freshness_s", as_f64_bits)?,
            poll_retries: field!(t, "poll_retries", as_u64)?
                .try_into()
                .map_err(|_| "poll_retries out of range".to_string())?,
        };
        topology.validate().map_err(|e| e.to_string())?;
        topologies.push(topology);
    }
    let mut integrities = Vec::new();
    for i in field!(v, "integrities", as_arr)? {
        let label = i.as_str().ok_or_else(|| "bad integrity".to_string())?;
        integrities.push(
            Integrity::parse(label).ok_or_else(|| format!("unknown integrity scheme {label:?}"))?,
        );
    }
    let cal = v.req("calibration")?;
    let exec = v.req("executor")?;
    Ok(ScenarioMatrix {
        environments,
        strategies,
        boards,
        workloads,
        seeds,
        budgets,
        faults,
        topologies,
        integrities,
        runs: field!(v, "runs", as_u64)?
            .try_into()
            .map_err(|_| "runs out of range".to_string())?,
        calibration: CalibrationConfig {
            samples: field!(cal, "samples", as_usize)?,
            percentile: cal
                .req("percentile")?
                .as_f32_bits()
                .ok_or_else(|| "bad field percentile".to_string())?,
        },
        executor: ExecutorConfig {
            max_outages: field!(exec, "max_outages", as_u64)?,
            stall_outages: field!(exec, "stall_outages", as_u64)?,
            charge_step_s: opt_f64(exec.req("charge_step_s")?)?,
            max_wall_seconds: field!(exec, "max_wall_seconds", as_f64_bits)?,
            energy_budget_nj: opt_f64(exec.req("energy_budget_nj")?)?,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{DigestSink, MetricsSink, RunRecord};
    use ehdl::ehsim::catalog;
    use ehdl::ehsim::{FaultTally, RunOutcome, RunReport};

    fn sample_digest() -> FleetDigest {
        let sink = DigestSink::new();
        let matrix = ScenarioMatrix::new();
        let scenarios = matrix.scenarios();
        let mut partial = sink.open(&scenarios[0], 0.875);
        let report = RunReport {
            outcome: RunOutcome::Completed,
            outages: 3,
            ondemand_checkpoints: 2,
            restores: 3,
            executed_ops: 1234,
            wasted_ops: 56,
            active_cycles: ehdl::device::Cycles::new(9_999),
            active_seconds: 0.0123456789,
            charging_seconds: 1.1e-3,
            wall_seconds: 0.5,
            energy: ehdl::device::Energy::from_nanojoules(7_777.25),
            checkpoint_energy: ehdl::device::Energy::from_nanojoules(11.5),
            meter: ehdl::device::EnergyMeter::new(),
            faults: FaultTally {
                spurious_resets: 2,
                sag_ops: 1,
                torn_commits: 1,
                corrupt_restores: 1,
                cold_boots: 1,
                detected_corruptions: 1,
                silent_corruptions: 0,
            },
            integrity: IntegrityTally {
                flips_injected: 5,
                flips_repaired: 2,
                flips_detected: 1,
                silent_restores: 1,
                wear_max_commits: 321,
                ladder: [7, 2, 1, 0],
            },
        };
        let record = RunRecord {
            scenario: &scenarios[0],
            run: 0,
            accuracy: 0.875,
            report: &report,
        };
        DigestSink::fold(&mut partial, &record);
        partial
    }

    #[test]
    fn fnv64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        let mut h = Fnv64::new();
        assert_eq!(h.finish(), 0xcbf29ce484222325);
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63dc4c8601ec8c);
        let mut h = Fnv64::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn json_parser_round_trips_wire_shapes() {
        let v = Json::parse(r#"{"a":1,"b":"x\"y\\z","c":[true,false,null],"d":{"e":[]}}"#).unwrap();
        assert_eq!(v.req("a").unwrap().as_u64(), Some(1));
        assert_eq!(v.req("b").unwrap().as_str(), Some("x\"y\\z"));
        assert_eq!(v.req("c").unwrap().as_arr().unwrap().len(), 3);
        assert!(Json::parse("{\"a\":1}trailing").is_err());
        assert!(Json::parse("{\"a\":").is_err());
        assert!(Json::parse("").is_err());
        // Control-character escapes (the only \u the writer emits).
        let v = Json::parse("\"x\\u000ay\\t\"").unwrap();
        assert_eq!(v.as_str(), Some("x\ny\t"));
    }

    #[test]
    fn digest_round_trip_is_bit_identical() {
        let digest = sample_digest();
        let line = digest_json(&digest);
        let back = digest_from(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(back, digest);
        // Canonical: re-serialization is byte-identical.
        assert_eq!(digest_json(&back), line);
        // The empty digest round-trips too (min = +inf, max = -inf).
        let empty = FleetDigest::new();
        let back = digest_from(&Json::parse(&digest_json(&empty)).unwrap()).unwrap();
        assert_eq!(back, empty);
    }

    #[test]
    fn records_round_trip() {
        let record = ShardRecord {
            index: 42,
            workload: "har".to_string(),
            environment: "lab, \"day 2\"".to_string(),
            strategy: "ACE+FLEX".to_string(),
            board: "MSP430FR5994".to_string(),
            budget: "unbounded".to_string(),
            fault: "f9:r1e-3:s0:t0:c0".to_string(),
            topology: "n4:d1:b1:p0.5:o0:f10".to_string(),
            integrity: "secded".to_string(),
            digest: sample_digest(),
        };
        let back = ShardRecord::from_line(&record.to_line()).unwrap();
        assert_eq!(back, record);
    }

    #[test]
    fn partials_verify_and_reject_corruption() {
        let header = PartialHeader {
            shard: 3,
            start: 42,
            len: 2,
            fingerprint: 0xdead_beef,
            runs: 1,
        };
        let mut writer = PartialWriter::new(Vec::new(), header).unwrap();
        for i in 0..2u64 {
            let record = ShardRecord {
                index: 42 + i,
                workload: "har".to_string(),
                environment: "bench_supply".to_string(),
                strategy: "ACE+FLEX".to_string(),
                board: "MSP430FR5994".to_string(),
                budget: "unbounded".to_string(),
                fault: "none".to_string(),
                topology: "solo".to_string(),
                integrity: "none".to_string(),
                digest: sample_digest(),
            };
            writer.write_record(&record).unwrap();
        }
        let bytes = writer.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let (back_header, records) = read_partial(&text).unwrap();
        assert_eq!(back_header, header);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].index, 42);
        assert_eq!(records[1].index, 43);

        // Truncation (drop the footer, or cut mid-record) is detected.
        let without_footer: String = text.lines().take(2).map(|l| format!("{l}\n")).collect();
        assert!(read_partial(&without_footer).is_err());
        assert!(read_partial(&text[..text.len() - 20]).is_err());
        // A flipped byte is detected.
        let corrupt = text.replacen("1234", "1235", 1);
        assert!(read_partial(&corrupt).unwrap_err().contains("checksum"));
        // An empty file is detected.
        assert!(read_partial("").is_err());
    }

    #[test]
    fn matrix_spec_round_trips_canonically() {
        let matrix = ScenarioMatrix::new()
            .environments(vec![
                catalog::bench_supply(),
                catalog::office_rf(),
                catalog::solar_day(),
                catalog::piezo_gait(),
                catalog::replay("lab, day 2", vec![(0.25, 0.0017), (1.0, 0.0)]).unwrap(),
            ])
            .strategies(Strategy::ALL.to_vec())
            .workloads(vec![
                Workload::Mnist { samples: 3 },
                Workload::Har { samples: 5 },
                Workload::Okg { samples: 7 },
            ])
            .seeds(vec![0, 7, u64::MAX])
            .energy_budgets_nj(vec![None, Some(12_345.678)])
            .faults(vec![
                FaultSpec::none(),
                FaultSpec {
                    seed: 9,
                    reset_per_op: 1e-3,
                    sag_per_op: 2e-3,
                    sag_factor: 1.5,
                    tear_per_commit: 5e-2,
                    corrupt_per_restore: 0.25,
                    burst_len: 8,
                    flip_per_commit_bit: 2e-4,
                    wear: WearCurve {
                        endurance_commits: 1_000,
                    },
                },
            ])
            .topologies(vec![
                NetworkTopology::solo(),
                NetworkTopology {
                    poll_retries: 2,
                    ..NetworkTopology::line(4, 1.5, 0.25)
                },
            ])
            .integrities(vec![
                Integrity::None,
                Integrity::Checksum,
                Integrity::Secded,
            ])
            .runs(3);
        let json = matrix_json(&matrix).unwrap();
        let back = matrix_from(&Json::parse(&json).unwrap()).unwrap();
        // Canonical: the round trip re-serializes byte-identically, so
        // fingerprints computed from either side agree.
        assert_eq!(matrix_json(&back).unwrap(), json);
        assert_eq!(back.len(), matrix.len());
        let (a, b) = (matrix.scenarios(), back.scenarios());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name(), y.name());
        }
        assert_ne!(
            fingerprint(&json, 10),
            fingerprint(&json, 11),
            "shard size is part of the sweep identity"
        );
    }

    #[test]
    fn fault_labels_canonicalize_through_wire_v4_byte_identically() {
        // The fault label is a group key and a shard-record column, so
        // the spec that comes back off the wire must label byte-for-byte
        // like the one that went in — flip rates and wear included.
        let specs = vec![
            FaultSpec::none(),
            FaultSpec {
                seed: 5,
                flip_per_commit_bit: 2.5e-4,
                ..FaultSpec::none()
            },
            FaultSpec {
                seed: 6,
                reset_per_op: 1e-3,
                flip_per_commit_bit: 1e-5,
                wear: WearCurve {
                    endurance_commits: 750,
                },
                ..FaultSpec::none()
            },
            FaultSpec {
                seed: 7,
                tear_per_commit: 0.02,
                burst_len: 4,
                wear: WearCurve {
                    endurance_commits: 10,
                },
                ..FaultSpec::none()
            },
        ];
        let labels: Vec<String> = specs.iter().map(FaultSpec::label).collect();
        assert!(labels[1].contains(":p0.00025"), "{}", labels[1]);
        assert!(labels[2].ends_with(":w750"), "{}", labels[2]);
        let matrix = ScenarioMatrix::new()
            .faults(specs)
            .integrities(vec![Integrity::Checksum]);
        let json = matrix_json(&matrix).unwrap();
        let back = matrix_from(&Json::parse(&json).unwrap()).unwrap();
        let back_labels: Vec<String> = back.faults.iter().map(FaultSpec::label).collect();
        assert_eq!(back_labels, labels);
        assert_eq!(back.integrities, vec![Integrity::Checksum]);
        // And the round trip itself stays canonical.
        assert_eq!(matrix_json(&back).unwrap(), json);
        // Unknown integrity labels are rejected, not silently dropped.
        let bad = json.replace("\"checksum\"", "\"crc32\"");
        let err = matrix_from(&Json::parse(&bad).unwrap()).unwrap_err();
        assert!(err.contains("crc32"), "{err}");
    }

    #[test]
    fn custom_boards_have_no_wire_form() {
        let table = ehdl::device::CostTable::msp430fr5994();
        let matrix = ScenarioMatrix::new().boards(vec![BoardSpec::Custom(table)]);
        assert!(matches!(
            matrix_json(&matrix),
            Err(ShardError::Protocol { .. })
        ));
    }
}
