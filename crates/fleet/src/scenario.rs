//! Scenario definition and the cross-product matrix builder.

use ehdl::datasets::Dataset;
use ehdl::ehsim::{catalog, Environment, ExecutorConfig, FaultSpec, Integrity};
use ehdl::nn::Model;
use ehdl::{BoardSpec, CalibrationConfig, Strategy};
use ehdl_netsim::NetworkTopology;

/// Which paper workload a scenario deploys: a Table II model together
/// with a slice of its synthetic dataset substitute. The slice seed
/// comes from the scenario, so one workload spans many data slices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// The MNIST LeNet-class model over `samples` synthetic digits.
    Mnist {
        /// Dataset-slice length.
        samples: usize,
    },
    /// The UCI-HAR model over `samples` accelerometer windows.
    Har {
        /// Dataset-slice length.
        samples: usize,
    },
    /// The Speech Commands (OKG) model over `samples` spectrograms.
    Okg {
        /// Dataset-slice length.
        samples: usize,
    },
}

impl Workload {
    /// The workload's name.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Mnist { .. } => "mnist",
            Workload::Har { .. } => "har",
            Workload::Okg { .. } => "okg",
        }
    }

    /// A fresh float model for this workload.
    pub fn model(self) -> Model {
        match self {
            Workload::Mnist { .. } => ehdl::nn::zoo::mnist(),
            Workload::Har { .. } => ehdl::nn::zoo::har(),
            Workload::Okg { .. } => ehdl::nn::zoo::okg(),
        }
    }

    /// The dataset slice for this workload under the given seed.
    pub fn dataset(self, seed: u64) -> Dataset {
        match self {
            Workload::Mnist { samples } => ehdl::datasets::mnist(samples, seed),
            Workload::Har { samples } => ehdl::datasets::har(samples, seed),
            Workload::Okg { samples } => ehdl::datasets::okg(samples, seed),
        }
    }
}

/// One point of the sweep: a (environment, strategy, board, workload,
/// seed, energy budget) tuple, expanded from a [`ScenarioMatrix`].
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Position in matrix order (the deterministic fold order).
    pub index: usize,
    /// The energy environment the session runs in.
    pub environment: Environment,
    /// The checkpoint/execution strategy.
    pub strategy: Strategy,
    /// The simulated board.
    pub board: BoardSpec,
    /// The model + dataset slice.
    pub workload: Workload,
    /// Seed for the dataset slice and the environment's randomness.
    pub seed: u64,
    /// Per-run energy budget override in nanojoules: `Some(nj)` caps
    /// every run of this scenario at `nj` drawn nanojoules
    /// ([`ExecutorConfig::energy_budget_nj`]); `None` (the default axis)
    /// inherits whatever the matrix-wide executor config says.
    pub energy_budget_nj: Option<f64>,
    /// The seeded fault schedule this scenario's runs execute under
    /// ([`FaultSpec::none()`] on the default axis — zero behavior
    /// change).
    pub fault: FaultSpec,
    /// The checkpoint-payload integrity scheme this scenario's plans
    /// are compiled with ([`Integrity::None`] on the default axis —
    /// zero behavior change). Guarded schemes pad every durable write
    /// with check words and walk the recovery ladder on faulted
    /// restores.
    pub integrity: Integrity,
    /// The networked-world topology this scenario runs under
    /// ([`NetworkTopology::solo()`] on the default axis — the classic
    /// single-device path, bit-identically). Non-solo topologies run
    /// every device of the world through the shared harvest field and
    /// resolve the gateway's polls into SLO metrics.
    pub topology: NetworkTopology,
    /// Index of the shared deployment this scenario runs on — scenarios
    /// that differ only in environment or energy budget share one built
    /// deployment.
    pub(crate) deployment_key: usize,
    /// Index of this scenario's environment in the matrix's environment
    /// axis — the runner keys its deterministic-run trace cache on
    /// (plan, environment, budget).
    pub(crate) environment_key: usize,
    /// Index of this scenario's entry in the matrix's energy-budget
    /// axis — the runner keys its per-budget executors (and the trace
    /// cache) on it, since the budget changes where runs abort.
    pub(crate) budget_key: usize,
    /// Index of this scenario's entry in the matrix's fault axis — the
    /// runner keys its compiled [`FaultPlan`](ehdl::ehsim::FaultPlan)s
    /// (and the trace cache) on it.
    pub(crate) fault_key: usize,
    /// Index of this scenario's entry in the matrix's integrity axis.
    pub(crate) integrity_key: usize,
    /// Index of this scenario's entry in the matrix's topology axis.
    pub(crate) topology_key: usize,
}

impl Scenario {
    /// Index of the shared deployment this scenario runs on (dense, in
    /// first-appearance order) — the key benches and runners use to
    /// build each deployment exactly once.
    pub fn deployment_key(&self) -> usize {
        self.deployment_key
    }

    /// Index of this scenario's environment in the matrix's environment
    /// axis — the key trace caches use for (plan, environment) pairs.
    pub fn environment_key(&self) -> usize {
        self.environment_key
    }

    /// Index of this scenario's entry in the matrix's energy-budget
    /// axis (see [`ScenarioMatrix::energy_budgets_nj`]).
    pub fn budget_key(&self) -> usize {
        self.budget_key
    }

    /// Index of this scenario's entry in the matrix's fault axis (see
    /// [`ScenarioMatrix::faults`]).
    pub fn fault_key(&self) -> usize {
        self.fault_key
    }

    /// Index of this scenario's entry in the matrix's integrity axis
    /// (see [`ScenarioMatrix::integrities`]).
    pub fn integrity_key(&self) -> usize {
        self.integrity_key
    }

    /// Index of this scenario's entry in the matrix's topology axis
    /// (see [`ScenarioMatrix::topologies`]).
    pub fn topology_key(&self) -> usize {
        self.topology_key
    }

    /// A stable human-readable name, unique within one matrix.
    pub fn name(&self) -> String {
        let mut name = format!(
            "{}/{}/{}/{}#{}",
            self.workload.name(),
            self.environment.name(),
            self.strategy.name(),
            self.board.name(),
            self.seed
        );
        if let Some(nj) = self.energy_budget_nj {
            name.push_str(&format!("@{nj}nJ"));
        }
        if !self.fault.is_none() {
            name.push('!');
            name.push_str(&self.fault.label());
        }
        if self.integrity != Integrity::None {
            name.push('+');
            name.push_str(self.integrity.label());
        }
        if !self.topology.is_solo() {
            name.push('~');
            name.push_str(&self.topology.label());
        }
        name
    }
}

/// Builds the cross-product of scenario axes.
///
/// Defaults: the full environment [`catalog`], the FLEX strategy, the
/// paper's board, a 16-sample HAR slice, seed 0, one intermittent run
/// per scenario, and the default executor tunables. Every axis setter
/// *replaces* its axis.
///
/// ```
/// use ehdl::ehsim::catalog;
/// use ehdl::Strategy;
/// use ehdl_fleet::ScenarioMatrix;
///
/// let matrix = ScenarioMatrix::new()
///     .environments(vec![catalog::bench_supply(), catalog::office_rf()])
///     .strategies(vec![Strategy::Sonic, Strategy::Flex]);
/// assert_eq!(matrix.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioMatrix {
    pub(crate) environments: Vec<Environment>,
    pub(crate) strategies: Vec<Strategy>,
    pub(crate) boards: Vec<BoardSpec>,
    pub(crate) workloads: Vec<Workload>,
    pub(crate) seeds: Vec<u64>,
    pub(crate) budgets: Vec<Option<f64>>,
    pub(crate) faults: Vec<FaultSpec>,
    pub(crate) integrities: Vec<Integrity>,
    pub(crate) topologies: Vec<NetworkTopology>,
    pub(crate) runs: u32,
    pub(crate) calibration: CalibrationConfig,
    pub(crate) executor: ExecutorConfig,
}

impl Default for ScenarioMatrix {
    fn default() -> Self {
        Self::new()
    }
}

impl ScenarioMatrix {
    /// A matrix with the default axes (see the type docs).
    pub fn new() -> Self {
        ScenarioMatrix {
            environments: catalog::all(),
            strategies: vec![Strategy::Flex],
            boards: vec![BoardSpec::Msp430Fr5994],
            workloads: vec![Workload::Har { samples: 16 }],
            seeds: vec![0],
            budgets: vec![None],
            faults: vec![FaultSpec::none()],
            integrities: vec![Integrity::None],
            topologies: vec![NetworkTopology::solo()],
            runs: 1,
            calibration: CalibrationConfig::default(),
            executor: ExecutorConfig::default(),
        }
    }

    /// Replaces the environment axis.
    pub fn environments(mut self, environments: Vec<Environment>) -> Self {
        self.environments = environments;
        self
    }

    /// Replaces the strategy axis.
    pub fn strategies(mut self, strategies: Vec<Strategy>) -> Self {
        self.strategies = strategies;
        self
    }

    /// Replaces the board axis.
    pub fn boards(mut self, boards: Vec<BoardSpec>) -> Self {
        self.boards = boards;
        self
    }

    /// Replaces the workload axis.
    pub fn workloads(mut self, workloads: Vec<Workload>) -> Self {
        self.workloads = workloads;
        self
    }

    /// Replaces the seed axis.
    pub fn seeds(mut self, seeds: Vec<u64>) -> Self {
        self.seeds = seeds;
        self
    }

    /// Replaces the per-run energy-budget axis, in nanojoules. The
    /// default axis is `vec![None]` — one unbounded entry, which
    /// inherits the matrix executor's own
    /// [`ExecutorConfig::energy_budget_nj`]. `Some(nj)` entries override
    /// it per scenario, so one sweep maps a completion-vs-joule frontier
    /// (group the digest by [`GroupAxis::EnergyBudget`](crate::GroupAxis)
    /// to chart it).
    pub fn energy_budgets_nj(mut self, budgets: Vec<Option<f64>>) -> Self {
        self.budgets = budgets;
        self
    }

    /// Replaces the fault-injection axis. The default axis is
    /// `vec![FaultSpec::none()]` — one no-fault entry, bit-identical to
    /// a matrix without the axis. Seeded entries subject every run of
    /// their scenarios to deterministic fault injection (spurious
    /// resets, voltage sags, torn commits, corrupt restores); group the
    /// digest by [`GroupAxis::Fault`](crate::GroupAxis) to compare
    /// resilience across schedules.
    pub fn faults(mut self, faults: Vec<FaultSpec>) -> Self {
        self.faults = faults;
        self
    }

    /// Replaces the checkpoint-integrity axis. The default axis is
    /// `vec![Integrity::None]` — one unguarded entry, bit-identical to
    /// a matrix without the axis. Guarded entries compile every plan of
    /// their scenarios with padded durable writes (checksum or SECDED
    /// check words) and resolve faulted restores through the recovery
    /// ladder; group the digest by
    /// [`GroupAxis::Integrity`](crate::GroupAxis) to compare schemes.
    pub fn integrities(mut self, integrities: Vec<Integrity>) -> Self {
        self.integrities = integrities;
        self
    }

    /// Replaces the network-topology axis. The default axis is
    /// `vec![NetworkTopology::solo()]` — one classic single-device
    /// entry, bit-identical to a matrix without the axis. Non-solo
    /// entries run their scenarios as networked worlds: every device
    /// shares the environment's harvest field through per-device path
    /// loss, a gateway polls for results, and the digest picks up SLO
    /// metrics; group by [`GroupAxis::Topology`](crate::GroupAxis) to
    /// compare service levels across fleet shapes.
    pub fn topologies(mut self, topologies: Vec<NetworkTopology>) -> Self {
        self.topologies = topologies;
        self
    }

    /// Intermittent runs per scenario (default 1). Each run re-seeds the
    /// environment's randomness, so stochastic environments vary per run.
    pub fn runs(mut self, runs: u32) -> Self {
        self.runs = runs;
        self
    }

    /// The calibration recipe shared by every deployment in the matrix.
    pub fn calibration(mut self, calibration: CalibrationConfig) -> Self {
        self.calibration = calibration;
        self
    }

    /// The executor tunables shared by every intermittent run.
    pub fn executor(mut self, executor: ExecutorConfig) -> Self {
        self.executor = executor;
        self
    }

    /// The environment axis, in expansion order (the order
    /// [`Scenario::environment_key`] indexes).
    pub fn environment_axis(&self) -> &[Environment] {
        &self.environments
    }

    /// The energy-budget axis, in expansion order (the order
    /// [`Scenario::budget_key`] indexes).
    pub fn energy_budget_axis(&self) -> &[Option<f64>] {
        &self.budgets
    }

    /// The fault axis, in expansion order (the order
    /// [`Scenario::fault_key`] indexes).
    pub fn fault_axis(&self) -> &[FaultSpec] {
        &self.faults
    }

    /// The integrity axis, in expansion order (the order
    /// [`Scenario::integrity_key`] indexes).
    pub fn integrity_axis(&self) -> &[Integrity] {
        &self.integrities
    }

    /// The topology axis, in expansion order (the order
    /// [`Scenario::topology_key`] indexes).
    pub fn topology_axis(&self) -> &[NetworkTopology] {
        &self.topologies
    }

    /// Number of scenarios the matrix expands to.
    pub fn len(&self) -> usize {
        self.environments.len()
            * self.strategies.len()
            * self.boards.len()
            * self.workloads.len()
            * self.seeds.len()
            * self.budgets.len()
            * self.faults.len()
            * self.integrities.len()
            * self.topologies.len()
    }

    /// `true` if any axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the full cross-product; see
    /// [`scenarios_range`](Self::scenarios_range).
    pub fn scenarios(&self) -> Vec<Scenario> {
        self.scenarios_range(0..self.len())
    }

    /// Expands a contiguous slice of the cross-product, in the fixed
    /// matrix order: workload, board, strategy, seed, topology,
    /// integrity, fault, budget, environment (innermost). Scenarios
    /// sharing a (workload, board, strategy, seed, integrity) prefix
    /// share a deployment key — dense over the whole matrix, contiguous
    /// over any contiguous index range — so runners build each
    /// deployment (and its integrity-priced plan) once and reuse it
    /// across every environment, budget, fault schedule and topology. A
    /// shard worker expands only its own range: memory stays O(shard),
    /// not O(matrix), however large the sweep.
    ///
    /// Indices, keys and scenarios are identical to the corresponding
    /// slice of [`scenarios`](Self::scenarios); out-of-bounds ends are
    /// clamped to the matrix length.
    pub fn scenarios_range(&self, range: core::ops::Range<usize>) -> Vec<Scenario> {
        let total = self.len();
        let start = range.start.min(total);
        let end = range.end.min(total);
        let ne = self.environments.len();
        let nb = self.budgets.len();
        let nf = self.faults.len();
        let ni = self.integrities.len();
        let nt = self.topologies.len();
        let ns = self.seeds.len();
        let nst = self.strategies.len();
        let mut out = Vec::with_capacity(end.saturating_sub(start));
        for index in start..end {
            let environment_key = index % ne;
            let budget_key = (index / ne) % nb;
            let fault_key = (index / (ne * nb)) % nf;
            let integrity_key = (index / (ne * nb * nf)) % ni;
            let topology_key = (index / (ne * nb * nf * ni)) % nt;
            let seed_i = (index / (ne * nb * nf * ni * nt)) % ns;
            let strategy_i = (index / (ne * nb * nf * ni * nt * ns)) % nst;
            let board_i = (index / (ne * nb * nf * ni * nt * ns * nst)) % self.boards.len();
            let workload_i = index / (ne * nb * nf * ni * nt * ns * nst * self.boards.len());
            out.push(Scenario {
                index,
                environment: self.environments[environment_key].clone(),
                strategy: self.strategies[strategy_i],
                board: self.boards[board_i].clone(),
                workload: self.workloads[workload_i],
                seed: self.seeds[seed_i],
                energy_budget_nj: self.budgets[budget_key],
                fault: self.faults[fault_key],
                integrity: self.integrities[integrity_key],
                topology: self.topologies[topology_key],
                // The plan bakes the integrity scheme into its durable
                // write pricing, so each scheme is its own deployment
                // slot; the composite stays dense and contiguous.
                deployment_key: (index / (ne * nb * nf * ni * nt)) * ni + integrity_key,
                environment_key,
                budget_key,
                fault_key,
                integrity_key,
                topology_key,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_expands_full_cross_product_in_order() {
        let m = ScenarioMatrix::new()
            .environments(vec![catalog::bench_supply(), catalog::office_rf()])
            .strategies(vec![Strategy::Base, Strategy::Flex])
            .boards(vec![BoardSpec::Msp430Fr5994])
            .seeds(vec![1, 2]);
        assert_eq!(m.len(), 8);
        let s = m.scenarios();
        assert_eq!(s.len(), 8);
        // Indices are dense and in order; environments innermost.
        for (i, sc) in s.iter().enumerate() {
            assert_eq!(sc.index, i);
        }
        assert_eq!(s[0].environment.name(), "bench_supply");
        assert_eq!(s[1].environment.name(), "office_rf");
        // Adjacent environments share a deployment key.
        assert_eq!(s[0].deployment_key, s[1].deployment_key);
        assert_ne!(s[1].deployment_key, s[2].deployment_key);
        // Seed changes the key (the dataset slice differs).
        assert_eq!(s[2].seed, 2);
        // Keys are dense: first occurrence of key k is at scenario 2k.
        let max_key = s.iter().map(|sc| sc.deployment_key).max().unwrap();
        assert_eq!(max_key, 3);
    }

    #[test]
    fn empty_axis_empties_the_matrix() {
        let m = ScenarioMatrix::new().environments(vec![]);
        assert!(m.is_empty());
        assert!(m.scenarios().is_empty());
        assert!(m.scenarios_range(0..10).is_empty());
    }

    #[test]
    fn scenario_range_matches_the_full_expansion() {
        let m = ScenarioMatrix::new()
            .environments(vec![catalog::bench_supply(), catalog::office_rf()])
            .strategies(vec![Strategy::Base, Strategy::Flex])
            .seeds(vec![1, 2, 3])
            .energy_budgets_nj(vec![None, Some(50_000.0)]);
        let full = m.scenarios();
        assert_eq!(full.len(), m.len());
        for (start, end) in [(0, 5), (5, 19), (19, m.len()), (0, m.len())] {
            let slice = m.scenarios_range(start..end);
            assert_eq!(slice.len(), end - start);
            for (a, b) in slice.iter().zip(&full[start..end]) {
                assert_eq!(a.index, b.index);
                assert_eq!(a.name(), b.name());
                assert_eq!(a.deployment_key, b.deployment_key);
                assert_eq!(a.environment_key, b.environment_key);
                assert_eq!(a.budget_key, b.budget_key);
                assert_eq!(a.energy_budget_nj, b.energy_budget_nj);
            }
        }
        // Ends clamp instead of panicking.
        assert_eq!(m.scenarios_range(m.len() - 2..m.len() + 10).len(), 2);
    }

    #[test]
    fn budget_axis_multiplies_the_matrix_and_shares_deployments() {
        let m = ScenarioMatrix::new()
            .environments(vec![catalog::bench_supply(), catalog::office_rf()])
            .energy_budgets_nj(vec![None, Some(1_000.0), Some(2_000.0)]);
        assert_eq!(m.len(), 2 * 3);
        let s = m.scenarios();
        // Budgets sit between seed and environment: environments
        // innermost, budget next, and every budget of one seed shares
        // the seed's deployment.
        assert_eq!(s[0].energy_budget_nj, None);
        assert_eq!(s[1].energy_budget_nj, None);
        assert_eq!(s[2].energy_budget_nj, Some(1_000.0));
        assert_eq!(s[2].environment.name(), "bench_supply");
        assert_eq!(s[3].environment.name(), "office_rf");
        assert!(s.iter().all(|sc| sc.deployment_key == 0));
        assert_eq!(s[4].budget_key, 2);
        // Budgeted scenarios carry the budget in their unique names.
        assert!(s[2].name().ends_with("@1000nJ"), "{}", s[2].name());
        let mut names: Vec<String> = s.iter().map(Scenario::name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), s.len());
    }

    #[test]
    fn fault_axis_multiplies_the_matrix_and_shares_deployments() {
        let noisy = FaultSpec {
            seed: 9,
            reset_per_op: 0.001,
            sag_per_op: 0.01,
            sag_factor: 1.5,
            tear_per_commit: 0.1,
            corrupt_per_restore: 0.1,
            burst_len: 0,
            flip_per_commit_bit: 0.0,
            wear: ehdl::ehsim::WearCurve::NONE,
        };
        let m = ScenarioMatrix::new()
            .environments(vec![catalog::bench_supply(), catalog::office_rf()])
            .energy_budgets_nj(vec![None, Some(1_000.0)])
            .faults(vec![FaultSpec::none(), noisy]);
        assert_eq!(m.len(), 2 * 2 * 2);
        let s = m.scenarios();
        // Faults sit between seed and budget: the first four scenarios
        // (2 environments × 2 budgets) are fault-free, the next four
        // carry the seeded schedule — all on one deployment.
        assert!(s[..4].iter().all(|sc| sc.fault.is_none()));
        assert!(s[4..].iter().all(|sc| sc.fault == noisy));
        assert!(s.iter().all(|sc| sc.deployment_key == 0));
        assert_eq!(s[4].fault_key, 1);
        // No-fault names are unchanged; faulted ones append the label.
        assert!(!s[0].name().contains('!'), "{}", s[0].name());
        assert!(s[4].name().contains("!f9:"), "{}", s[4].name());
        let mut names: Vec<String> = s.iter().map(Scenario::name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), s.len());
    }

    #[test]
    fn integrity_axis_multiplies_the_matrix_and_splits_deployments() {
        let m = ScenarioMatrix::new()
            .environments(vec![catalog::bench_supply(), catalog::office_rf()])
            .faults(vec![
                FaultSpec::none(),
                FaultSpec {
                    seed: 1,
                    reset_per_op: 0.001,
                    ..FaultSpec::none()
                },
            ])
            .integrities(vec![Integrity::None, Integrity::Secded]);
        assert_eq!(m.len(), 2 * 2 * 2);
        let s = m.scenarios();
        // Integrity sits between topology and fault: the first four
        // scenarios (2 environments × 2 faults) are unguarded, the
        // next four carry SECDED — on a *different* deployment, since
        // the scheme changes the plan's durable-write pricing.
        assert!(s[..4].iter().all(|sc| sc.integrity == Integrity::None));
        assert!(s[4..].iter().all(|sc| sc.integrity == Integrity::Secded));
        assert!(s[..4].iter().all(|sc| sc.deployment_key == 0));
        assert!(s[4..].iter().all(|sc| sc.deployment_key == 1));
        assert_eq!(s[4].integrity_key, 1);
        // Unguarded names are unchanged; guarded ones append the label.
        // (The strategy name "ACE+FLEX" contains '+', so check for the
        // scheme suffix itself, not the separator.)
        assert!(!s[0].name().ends_with("+none"), "{}", s[0].name());
        assert!(!s[0].name().ends_with("+secded"), "{}", s[0].name());
        assert!(s[4].name().ends_with("+secded"), "{}", s[4].name());
        let mut names: Vec<String> = s.iter().map(Scenario::name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), s.len());
    }

    #[test]
    fn topology_axis_multiplies_the_matrix_and_shares_deployments() {
        let fleet = NetworkTopology::line(4, 0.5, 0.25);
        let m = ScenarioMatrix::new()
            .environments(vec![catalog::bench_supply(), catalog::office_rf()])
            .faults(vec![
                FaultSpec::none(),
                FaultSpec {
                    seed: 1,
                    reset_per_op: 0.001,
                    ..FaultSpec::none()
                },
            ])
            .topologies(vec![NetworkTopology::solo(), fleet]);
        assert_eq!(m.len(), 2 * 2 * 2);
        let s = m.scenarios();
        // Topologies sit between seed and fault: the first four
        // scenarios (2 environments × 2 faults) are solo, the next
        // four carry the fleet — all on one deployment.
        assert!(s[..4].iter().all(|sc| sc.topology.is_solo()));
        assert!(s[4..].iter().all(|sc| sc.topology == fleet));
        assert!(s.iter().all(|sc| sc.deployment_key == 0));
        assert_eq!(s[4].topology_key, 1);
        // Solo names are unchanged; fleet ones append the label.
        assert!(!s[0].name().contains('~'), "{}", s[0].name());
        assert!(s[4].name().contains("~n4:"), "{}", s[4].name());
        let mut names: Vec<String> = s.iter().map(Scenario::name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), s.len());
    }

    #[test]
    fn scenario_names_are_unique() {
        let m = ScenarioMatrix::new()
            .strategies(Strategy::ALL.to_vec())
            .seeds(vec![0, 7]);
        let s = m.scenarios();
        let mut names: Vec<String> = s.iter().map(Scenario::name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), s.len());
    }

    #[test]
    fn workload_metadata_matches_datasets() {
        for (w, classes) in [
            (Workload::Mnist { samples: 4 }, 10),
            (Workload::Har { samples: 4 }, 6),
            (Workload::Okg { samples: 4 }, 12),
        ] {
            let data = w.dataset(3);
            assert_eq!(data.len(), 4);
            assert_eq!(data.classes(), classes);
            assert!(!w.name().is_empty());
        }
    }
}
