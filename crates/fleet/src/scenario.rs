//! Scenario definition and the cross-product matrix builder.

use ehdl::datasets::Dataset;
use ehdl::ehsim::{catalog, Environment, ExecutorConfig};
use ehdl::nn::Model;
use ehdl::{BoardSpec, CalibrationConfig, Strategy};

/// Which paper workload a scenario deploys: a Table II model together
/// with a slice of its synthetic dataset substitute. The slice seed
/// comes from the scenario, so one workload spans many data slices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// The MNIST LeNet-class model over `samples` synthetic digits.
    Mnist {
        /// Dataset-slice length.
        samples: usize,
    },
    /// The UCI-HAR model over `samples` accelerometer windows.
    Har {
        /// Dataset-slice length.
        samples: usize,
    },
    /// The Speech Commands (OKG) model over `samples` spectrograms.
    Okg {
        /// Dataset-slice length.
        samples: usize,
    },
}

impl Workload {
    /// The workload's name.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Mnist { .. } => "mnist",
            Workload::Har { .. } => "har",
            Workload::Okg { .. } => "okg",
        }
    }

    /// A fresh float model for this workload.
    pub fn model(self) -> Model {
        match self {
            Workload::Mnist { .. } => ehdl::nn::zoo::mnist(),
            Workload::Har { .. } => ehdl::nn::zoo::har(),
            Workload::Okg { .. } => ehdl::nn::zoo::okg(),
        }
    }

    /// The dataset slice for this workload under the given seed.
    pub fn dataset(self, seed: u64) -> Dataset {
        match self {
            Workload::Mnist { samples } => ehdl::datasets::mnist(samples, seed),
            Workload::Har { samples } => ehdl::datasets::har(samples, seed),
            Workload::Okg { samples } => ehdl::datasets::okg(samples, seed),
        }
    }
}

/// One point of the sweep: a (environment, strategy, board, workload,
/// seed) tuple, expanded from a [`ScenarioMatrix`].
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Position in matrix order (the deterministic fold order).
    pub index: usize,
    /// The energy environment the session runs in.
    pub environment: Environment,
    /// The checkpoint/execution strategy.
    pub strategy: Strategy,
    /// The simulated board.
    pub board: BoardSpec,
    /// The model + dataset slice.
    pub workload: Workload,
    /// Seed for the dataset slice and the environment's randomness.
    pub seed: u64,
    /// Index of the shared deployment this scenario runs on — scenarios
    /// that differ only in environment share one built deployment.
    pub(crate) deployment_key: usize,
    /// Index of this scenario's environment in the matrix's environment
    /// axis — the runner keys its deterministic-run trace cache on
    /// (plan, environment).
    pub(crate) environment_key: usize,
}

impl Scenario {
    /// Index of the shared deployment this scenario runs on (dense, in
    /// first-appearance order) — the key benches and runners use to
    /// build each deployment exactly once.
    pub fn deployment_key(&self) -> usize {
        self.deployment_key
    }

    /// Index of this scenario's environment in the matrix's environment
    /// axis — the key trace caches use for (plan, environment) pairs.
    pub fn environment_key(&self) -> usize {
        self.environment_key
    }

    /// A stable human-readable name, unique within one matrix.
    pub fn name(&self) -> String {
        format!(
            "{}/{}/{}/{}#{}",
            self.workload.name(),
            self.environment.name(),
            self.strategy.name(),
            self.board.name(),
            self.seed
        )
    }
}

/// Builds the cross-product of scenario axes.
///
/// Defaults: the full environment [`catalog`], the FLEX strategy, the
/// paper's board, a 16-sample HAR slice, seed 0, one intermittent run
/// per scenario, and the default executor tunables. Every axis setter
/// *replaces* its axis.
///
/// ```
/// use ehdl::ehsim::catalog;
/// use ehdl::Strategy;
/// use ehdl_fleet::ScenarioMatrix;
///
/// let matrix = ScenarioMatrix::new()
///     .environments(vec![catalog::bench_supply(), catalog::office_rf()])
///     .strategies(vec![Strategy::Sonic, Strategy::Flex]);
/// assert_eq!(matrix.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioMatrix {
    pub(crate) environments: Vec<Environment>,
    pub(crate) strategies: Vec<Strategy>,
    pub(crate) boards: Vec<BoardSpec>,
    pub(crate) workloads: Vec<Workload>,
    pub(crate) seeds: Vec<u64>,
    pub(crate) runs: u32,
    pub(crate) calibration: CalibrationConfig,
    pub(crate) executor: ExecutorConfig,
}

impl Default for ScenarioMatrix {
    fn default() -> Self {
        Self::new()
    }
}

impl ScenarioMatrix {
    /// A matrix with the default axes (see the type docs).
    pub fn new() -> Self {
        ScenarioMatrix {
            environments: catalog::all(),
            strategies: vec![Strategy::Flex],
            boards: vec![BoardSpec::Msp430Fr5994],
            workloads: vec![Workload::Har { samples: 16 }],
            seeds: vec![0],
            runs: 1,
            calibration: CalibrationConfig::default(),
            executor: ExecutorConfig::default(),
        }
    }

    /// Replaces the environment axis.
    pub fn environments(mut self, environments: Vec<Environment>) -> Self {
        self.environments = environments;
        self
    }

    /// Replaces the strategy axis.
    pub fn strategies(mut self, strategies: Vec<Strategy>) -> Self {
        self.strategies = strategies;
        self
    }

    /// Replaces the board axis.
    pub fn boards(mut self, boards: Vec<BoardSpec>) -> Self {
        self.boards = boards;
        self
    }

    /// Replaces the workload axis.
    pub fn workloads(mut self, workloads: Vec<Workload>) -> Self {
        self.workloads = workloads;
        self
    }

    /// Replaces the seed axis.
    pub fn seeds(mut self, seeds: Vec<u64>) -> Self {
        self.seeds = seeds;
        self
    }

    /// Intermittent runs per scenario (default 1). Each run re-seeds the
    /// environment's randomness, so stochastic environments vary per run.
    pub fn runs(mut self, runs: u32) -> Self {
        self.runs = runs;
        self
    }

    /// The calibration recipe shared by every deployment in the matrix.
    pub fn calibration(mut self, calibration: CalibrationConfig) -> Self {
        self.calibration = calibration;
        self
    }

    /// The executor tunables shared by every intermittent run.
    pub fn executor(mut self, executor: ExecutorConfig) -> Self {
        self.executor = executor;
        self
    }

    /// The environment axis, in expansion order (the order
    /// [`Scenario::environment_key`] indexes).
    pub fn environment_axis(&self) -> &[Environment] {
        &self.environments
    }

    /// Number of scenarios the matrix expands to.
    pub fn len(&self) -> usize {
        self.environments.len()
            * self.strategies.len()
            * self.boards.len()
            * self.workloads.len()
            * self.seeds.len()
    }

    /// `true` if any axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the cross-product in a fixed order: workload, board,
    /// strategy, seed, environment (innermost). Scenarios sharing a
    /// (workload, board, strategy, seed) prefix share a deployment key,
    /// so the runner builds each deployment once and reuses it across
    /// every environment.
    pub fn scenarios(&self) -> Vec<Scenario> {
        let mut out = Vec::with_capacity(self.len());
        let mut key = 0usize;
        for &workload in &self.workloads {
            for board in &self.boards {
                for &strategy in &self.strategies {
                    for &seed in &self.seeds {
                        for (environment_key, environment) in self.environments.iter().enumerate() {
                            out.push(Scenario {
                                index: out.len(),
                                environment: environment.clone(),
                                strategy,
                                board: board.clone(),
                                workload,
                                seed,
                                deployment_key: key,
                                environment_key,
                            });
                        }
                        key += 1;
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_expands_full_cross_product_in_order() {
        let m = ScenarioMatrix::new()
            .environments(vec![catalog::bench_supply(), catalog::office_rf()])
            .strategies(vec![Strategy::Base, Strategy::Flex])
            .boards(vec![BoardSpec::Msp430Fr5994])
            .seeds(vec![1, 2]);
        assert_eq!(m.len(), 8);
        let s = m.scenarios();
        assert_eq!(s.len(), 8);
        // Indices are dense and in order; environments innermost.
        for (i, sc) in s.iter().enumerate() {
            assert_eq!(sc.index, i);
        }
        assert_eq!(s[0].environment.name(), "bench_supply");
        assert_eq!(s[1].environment.name(), "office_rf");
        // Adjacent environments share a deployment key.
        assert_eq!(s[0].deployment_key, s[1].deployment_key);
        assert_ne!(s[1].deployment_key, s[2].deployment_key);
        // Seed changes the key (the dataset slice differs).
        assert_eq!(s[2].seed, 2);
        // Keys are dense: first occurrence of key k is at scenario 2k.
        let max_key = s.iter().map(|sc| sc.deployment_key).max().unwrap();
        assert_eq!(max_key, 3);
    }

    #[test]
    fn empty_axis_empties_the_matrix() {
        let m = ScenarioMatrix::new().environments(vec![]);
        assert!(m.is_empty());
        assert!(m.scenarios().is_empty());
    }

    #[test]
    fn scenario_names_are_unique() {
        let m = ScenarioMatrix::new()
            .strategies(Strategy::ALL.to_vec())
            .seeds(vec![0, 7]);
        let s = m.scenarios();
        let mut names: Vec<String> = s.iter().map(Scenario::name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), s.len());
    }

    #[test]
    fn workload_metadata_matches_datasets() {
        for (w, classes) in [
            (Workload::Mnist { samples: 4 }, 10),
            (Workload::Har { samples: 4 }, 6),
            (Workload::Okg { samples: 4 }, 12),
        ] {
            let data = w.dataset(3);
            assert_eq!(data.len(), 4);
            assert_eq!(data.classes(), classes);
            assert!(!w.name().is_empty());
        }
    }
}
