//! Fixed-size, mergeable sample digests.
//!
//! A [`StatsDigest`] folds an unbounded stream of samples into constant
//! space: exact count/sum/min/max plus a fixed-bin log-histogram
//! quantile sketch. Two digests merge by adding their bins, so
//! per-scenario partials combine into a fleet-wide digest without ever
//! retaining a sample — the property that lets 10k+ scenario sweeps
//! report percentiles in O(1) memory, the same way summary-based
//! solvers scale by composing small abstractions instead of enumerating
//! concrete instances.
//!
//! Determinism: folding is a pure function of the sample sequence, and
//! merging is a pure function of the (ordered) digest sequence. The
//! fleet runner folds each scenario's runs inside one worker in run
//! order and merges scenario digests in matrix order, so the final
//! digest is bit-identical at any worker count.

use core::fmt;

/// Number of log-spaced histogram bins.
const BINS: usize = 1024;

/// Lower edge of bin 0; smaller positive samples clamp into bin 0.
const MIN_TRACKED: f64 = 1e-9;

/// Natural log of the bin-width ratio γ: bin `i` covers
/// `[MIN_TRACKED · γ^i, MIN_TRACKED · γ^(i+1))`.
const LN_GAMMA: f64 = 0.04;

/// A constant-size digest of a sample stream: exact count, sum, min and
/// max, plus a 1024-bin log-histogram covering `[1e-9, ~6e8]` from
/// which any quantile can be estimated within
/// [`StatsDigest::RELATIVE_ERROR`].
///
/// ```
/// use ehdl_fleet::StatsDigest;
///
/// let mut d = StatsDigest::new();
/// for v in [1.0, 2.0, 3.0, 4.0] {
///     d.record(v);
/// }
/// assert_eq!(d.count(), 4);
/// assert_eq!(d.min(), Some(1.0));
/// let p50 = d.quantile(50.0).unwrap();
/// assert!((p50 - 2.0).abs() / 2.0 <= StatsDigest::RELATIVE_ERROR);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StatsDigest {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    bins: Box<[u64; BINS]>,
}

impl Default for StatsDigest {
    fn default() -> Self {
        Self::new()
    }
}

impl StatsDigest {
    /// Worst-case relative error of [`quantile`](Self::quantile) for
    /// samples inside the tracked range `[1e-9, ~6e8]`: estimates are
    /// geometric bin midpoints, so they sit within `√γ − 1 ≈ 2.02%` of
    /// any sample landing in the same bin.
    pub const RELATIVE_ERROR: f64 = 0.0203;

    /// An empty digest.
    pub fn new() -> Self {
        StatsDigest {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            bins: Box::new([0u64; BINS]),
        }
    }

    /// Folds one sample. Non-finite samples are ignored; samples outside
    /// the tracked range clamp into the first or last bin (count, sum,
    /// min and max stay exact either way).
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.bins[bin_of(value)] += 1;
    }

    /// Merges `other` into `self`. Bin counts add, so merging is
    /// associative and (up to the floating-point `sum`) commutative;
    /// callers wanting bit-identical sums must merge in a fixed order.
    pub fn merge(&mut self, other: &StatsDigest) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.bins.iter_mut().zip(other.bins.iter()) {
            *a += *b;
        }
    }

    /// Number of samples folded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact minimum, `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum, `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact mean, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Nearest-rank quantile estimate (`p` in `[0, 100]`), `None` when
    /// empty. The estimate is the geometric midpoint of the bin holding
    /// the nearest-rank sample, clamped into `[min, max]` — within
    /// [`RELATIVE_ERROR`](Self::RELATIVE_ERROR) of the exact
    /// nearest-rank percentile for in-range samples.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.bins.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let mid = MIN_TRACKED * (LN_GAMMA * (i as f64 + 0.5)).exp();
                return Some(mid.clamp(self.min, self.max));
            }
        }
        // Unreachable: the bins sum to `count`.
        Some(self.max)
    }

    /// Median estimate (`None` when empty).
    pub fn p50(&self) -> Option<f64> {
        self.quantile(50.0)
    }

    /// 90th-percentile estimate (`None` when empty).
    pub fn p90(&self) -> Option<f64> {
        self.quantile(90.0)
    }

    /// 99th-percentile estimate (`None` when empty).
    pub fn p99(&self) -> Option<f64> {
        self.quantile(99.0)
    }

    /// Bytes this digest retains (inline struct plus the boxed bins) —
    /// a constant, however many samples were folded.
    pub fn memory_bytes(&self) -> usize {
        core::mem::size_of::<Self>() + BINS * core::mem::size_of::<u64>()
    }

    /// The occupied histogram bins as sparse `(bin_index, count)` pairs,
    /// ascending — the raw resolution data behind every quantile this
    /// digest can report. Few occupied bins means coarse quantiles: all
    /// samples in one bin answer every percentile with the same midpoint.
    pub fn bin_occupancy(&self) -> Vec<(usize, u64)> {
        self.bins
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i, n))
            .collect()
    }

    /// The histogram bin holding the nearest-rank sample for percentile
    /// `p`, `None` when empty. Two percentiles landing in the same bin
    /// return the same [`quantile`](Self::quantile) estimate — see
    /// [`quantile_fidelity`](Self::quantile_fidelity).
    pub fn quantile_bin(&self, p: f64) -> Option<usize> {
        if self.count == 0 {
            return None;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.bins.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(i);
            }
        }
        Some(BINS - 1)
    }

    /// How much resolution the histogram actually has for this sample
    /// set: occupied-bin count and the bins behind the p50/p90/p99
    /// estimates. Explains artifacts like `p90 == p99`: each bin spans a
    /// `e^0.04 ≈ 4.08%` value ratio, so a tail clustered tighter than
    /// one bin collapses every tail percentile onto one midpoint (the
    /// estimates are still within [`RELATIVE_ERROR`](Self::RELATIVE_ERROR)
    /// of the exact values — the sketch is coarse, not wrong).
    pub fn quantile_fidelity(&self) -> QuantileFidelity {
        QuantileFidelity {
            occupied_bins: self.bins.iter().filter(|&&n| n > 0).count(),
            p50_bin: self.quantile_bin(50.0),
            p90_bin: self.quantile_bin(90.0),
            p99_bin: self.quantile_bin(99.0),
        }
    }

    /// The digest's exact state for wire serialization:
    /// `(count, sum, min, max, bins)`. Together with
    /// [`from_raw_parts`](Self::from_raw_parts) this is the bit-exact
    /// round trip the shard protocol rides on.
    pub(crate) fn raw_parts(&self) -> (u64, f64, f64, f64, &[u64]) {
        (self.count, self.sum, self.min, self.max, &self.bins[..])
    }

    /// Rebuilds a digest from wire parts; `sparse` is `(bin, count)`
    /// pairs. Returns `None` when a bin index is out of range (a
    /// corrupt or newer-format partial).
    pub(crate) fn from_raw_parts(
        count: u64,
        sum: f64,
        min: f64,
        max: f64,
        sparse: &[(usize, u64)],
    ) -> Option<Self> {
        let mut bins = Box::new([0u64; BINS]);
        for &(bin, n) in sparse {
            if bin >= BINS {
                return None;
            }
            bins[bin] = n;
        }
        Some(StatsDigest {
            count,
            sum,
            min,
            max,
            bins,
        })
    }
}

/// A [`StatsDigest`]'s quantile resolution for the samples it holds:
/// which log-histogram bins back the headline percentiles, and how many
/// bins the sample set occupies at all. Produced by
/// [`StatsDigest::quantile_fidelity`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantileFidelity {
    /// Number of occupied histogram bins.
    pub occupied_bins: usize,
    /// Bin behind the p50 estimate (`None` when empty).
    pub p50_bin: Option<usize>,
    /// Bin behind the p90 estimate (`None` when empty).
    pub p90_bin: Option<usize>,
    /// Bin behind the p99 estimate (`None` when empty).
    pub p99_bin: Option<usize>,
}

impl QuantileFidelity {
    /// The value ratio one bin spans (`e^0.04 ≈ 1.0408`): percentiles
    /// whose exact values differ by less than ~4.08% can land in one bin
    /// and report identical estimates.
    pub const BIN_WIDTH_RATIO: f64 = 1.0408;

    /// `true` when p90 and p99 are backed by the same bin — the tail is
    /// clustered tighter than one bin's ~4.08% span, so both report the
    /// same midpoint (the `latency_p90 == latency_p99` artifact).
    pub fn tail_collapsed(&self) -> bool {
        self.p90_bin.is_some() && self.p90_bin == self.p99_bin
    }
}

impl fmt::Display for QuantileFidelity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bin = |b: Option<usize>| b.map_or_else(|| "-".to_string(), |i| i.to_string());
        write!(
            f,
            "{} occupied bins, p50@{} p90@{} p99@{}{}",
            self.occupied_bins,
            bin(self.p50_bin),
            bin(self.p90_bin),
            bin(self.p99_bin),
            if self.tail_collapsed() {
                " (tail collapsed: p90 and p99 share a bin)"
            } else {
                ""
            }
        )
    }
}

/// The histogram bin a sample lands in.
fn bin_of(value: f64) -> usize {
    if value < MIN_TRACKED {
        return 0;
    }
    let i = ((value / MIN_TRACKED).ln() / LN_GAMMA).floor();
    (i as usize).min(BINS - 1)
}

impl fmt::Display for StatsDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.count {
            0 => write!(f, "empty digest"),
            n => write!(
                f,
                "n={n} mean {:.3} min {:.3} p50 {:.3} p90 {:.3} p99 {:.3} max {:.3}",
                self.mean().unwrap_or(0.0),
                self.min,
                self.p50().unwrap_or(0.0),
                self.p90().unwrap_or(0.0),
                self.p99().unwrap_or(0.0),
                self.max
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn splitmix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Unit float in [0, 1) from a SplitMix64 draw.
    fn unit(z: u64) -> f64 {
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The textbook nearest-rank percentile over unsorted samples.
    fn exact_percentile(samples: &[f64], p: f64) -> f64 {
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    #[test]
    fn empty_digest_has_no_stats() {
        let d = StatsDigest::new();
        assert_eq!(d.count(), 0);
        assert_eq!(d.min(), None);
        assert_eq!(d.max(), None);
        assert_eq!(d.mean(), None);
        assert_eq!(d.quantile(50.0), None);
        assert_eq!(d.to_string(), "empty digest");
    }

    #[test]
    fn exact_moments_are_exact() {
        let mut d = StatsDigest::new();
        for v in [4.0, 1.0, 7.0, 2.0] {
            d.record(v);
        }
        assert_eq!(d.count(), 4);
        assert_eq!(d.sum(), 14.0);
        assert_eq!(d.min(), Some(1.0));
        assert_eq!(d.max(), Some(7.0));
        assert_eq!(d.mean(), Some(3.5));
        // Non-finite samples are dropped, not folded as garbage.
        d.record(f64::NAN);
        d.record(f64::INFINITY);
        assert_eq!(d.count(), 4);
    }

    #[test]
    fn quantiles_land_within_the_documented_relative_error() {
        // Deterministic SplitMix64 sample sets over several shapes and
        // sizes, spanning many decades so hundreds of bins are hit.
        for (shape, size) in [(0u64, 100usize), (1, 1_000), (2, 10_000), (3, 4_777)] {
            let samples: Vec<f64> = (0..size)
                .map(|i| {
                    let u = unit(splitmix((i as u64) ^ (shape << 56)));
                    match shape {
                        // Uniform latencies around 100 ms.
                        0 => 20.0 + 180.0 * u,
                        // Log-uniform over nine decades.
                        1 => 1e-3 * (u * 9.0 * core::f64::consts::LN_10).exp(),
                        // Heavy-tailed: mostly 1–10, occasional 1e4 spikes.
                        2 => {
                            if u < 0.95 {
                                1.0 + 9.0 * (u / 0.95)
                            } else {
                                1e4 * (1.0 + u)
                            }
                        }
                        // Near-constant with jitter (everything one bin).
                        _ => 42.0 * (1.0 + 1e-6 * u),
                    }
                })
                .collect();
            let mut d = StatsDigest::new();
            for &v in &samples {
                d.record(v);
            }
            for p in [0.0, 1.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
                let exact = exact_percentile(&samples, p);
                let est = d.quantile(p).unwrap();
                let rel = (est - exact).abs() / exact;
                assert!(
                    rel <= StatsDigest::RELATIVE_ERROR,
                    "shape {shape} n={size} p={p}: est {est} vs exact {exact} (rel {rel:.5})"
                );
            }
        }
    }

    #[test]
    fn merge_in_fixed_order_is_bit_identical_regardless_of_chunking() {
        let samples: Vec<f64> = (0..5_000).map(|i| 1.0 + 1e3 * unit(splitmix(i))).collect();
        // Chunk the stream two different ways; per-chunk digests merged
        // in stream order must agree bit for bit (the worker-count
        // independence argument at digest level).
        let mut merged_a = StatsDigest::new();
        for chunk in samples.chunks(7) {
            let mut part = StatsDigest::new();
            chunk.iter().for_each(|&v| part.record(v));
            merged_a.merge(&part);
        }
        let mut merged_b = StatsDigest::new();
        for chunk in samples.chunks(501) {
            let mut part = StatsDigest::new();
            chunk.iter().for_each(|&v| part.record(v));
            merged_b.merge(&part);
        }
        // Identical counts, bins and extremes...
        assert_eq!(merged_a.count(), merged_b.count());
        assert_eq!(merged_a.min(), merged_b.min());
        assert_eq!(merged_a.max(), merged_b.max());
        assert_eq!(merged_a.quantile(50.0), merged_b.quantile(50.0));
        // ...but the floating-point sum depends on chunk boundaries —
        // which is exactly why the fleet merges in scenario order, where
        // chunking is fixed by the matrix, not the worker pool.
        let mut seq = StatsDigest::new();
        samples.iter().for_each(|&v| seq.record(v));
        assert_eq!(seq.count(), merged_a.count());
    }

    #[test]
    fn out_of_range_samples_clamp_into_edge_bins() {
        let mut d = StatsDigest::new();
        d.record(1e-12); // below bin 0
        d.record(1e12); // beyond the last bin
        assert_eq!(d.count(), 2);
        // Min/max stay exact even when the histogram clamps.
        assert_eq!(d.min(), Some(1e-12));
        assert_eq!(d.max(), Some(1e12));
        // Quantiles stay inside the observed range.
        let p50 = d.quantile(50.0).unwrap();
        assert!((1e-12..=1e12).contains(&p50));
    }

    #[test]
    fn clustered_tail_collapses_p90_and_p99_into_one_bin() {
        // The BENCH_fleet.json `fleet_digest` entry reports
        // latency_p90_ms == latency_p99_ms (6746.1966 both). This is the
        // sketch's documented resolution limit, not a bug: each log bin
        // spans a ~4.08% value ratio, so when the top decile of samples
        // clusters tighter than that (many scenarios sharing one slow
        // deterministic trajectory), the p90 and p99 ranks land in the
        // same bin and both report its geometric midpoint.
        let mut d = StatsDigest::new();
        // 85 fast samples spread over decades, 15 slow ones within 2% —
        // the p90 and p99 ranks both land in the clustered tail.
        for i in 0..85 {
            d.record(1.0 + f64::from(i));
        }
        for i in 0..15 {
            d.record(6700.0 * (1.0 + 1e-3 * f64::from(i)));
        }
        let p90 = d.quantile(90.0).unwrap();
        let p99 = d.quantile(99.0).unwrap();
        assert_eq!(p90, p99, "clustered tail must collapse");
        let fidelity = d.quantile_fidelity();
        assert!(fidelity.tail_collapsed(), "{fidelity}");
        assert_eq!(fidelity.p90_bin, fidelity.p99_bin);
        assert_ne!(fidelity.p50_bin, fidelity.p90_bin);
        assert!(fidelity.to_string().contains("tail collapsed"));
        // Both estimates are still within the documented error of the
        // exact nearest-rank values.
        let exact_p90 = exact_percentile(
            &(0..85)
                .map(|i| 1.0 + f64::from(i))
                .chain((0..15).map(|i| 6700.0 * (1.0 + 1e-3 * f64::from(i))))
                .collect::<Vec<_>>(),
            90.0,
        );
        assert!((p90 - exact_p90).abs() / exact_p90 <= StatsDigest::RELATIVE_ERROR);
        // A tail spread wider than one bin does NOT collapse.
        let mut spread = StatsDigest::new();
        for i in 0..85 {
            spread.record(1.0 + f64::from(i));
        }
        for i in 0..15 {
            spread.record(6700.0 * (1.0 + 0.1 * f64::from(i)));
        }
        assert!(!spread.quantile_fidelity().tail_collapsed());
        assert_ne!(spread.quantile(90.0), spread.quantile(99.0));
    }

    #[test]
    fn bin_occupancy_is_the_sparse_histogram() {
        let mut d = StatsDigest::new();
        assert!(d.bin_occupancy().is_empty());
        assert_eq!(d.quantile_bin(50.0), None);
        for v in [1.0, 1.0, 1e6] {
            d.record(v);
        }
        let occ = d.bin_occupancy();
        assert_eq!(occ.len(), 2);
        assert_eq!(occ[0].1, 2);
        assert_eq!(occ[1].1, 1);
        assert!(occ[0].0 < occ[1].0);
        assert_eq!(occ.iter().map(|&(_, n)| n).sum::<u64>(), d.count());
        assert_eq!(d.quantile_bin(50.0), Some(occ[0].0));
        assert_eq!(d.quantile_bin(100.0), Some(occ[1].0));
    }

    #[test]
    fn display_summarizes() {
        let mut d = StatsDigest::new();
        d.record(2.0);
        let s = d.to_string();
        assert!(s.contains("n=1"), "{s}");
    }
}
