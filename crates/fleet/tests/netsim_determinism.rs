//! Determinism contract of networked-fleet scenarios: the digest of a
//! sweep with a [`NetworkTopology`] axis is a pure function of the
//! matrix — bit-identical at any worker count and any shard split —
//! and a single-device topology reproduces the solo executor's records
//! exactly, so the network layer provably adds nothing to the physics.

use ehdl::ehsim::{catalog, ExecEvent, ExecProbe, ExecutorConfig, RunOutcome, TimelineRecorder};
use ehdl::Strategy;
use ehdl_fleet::{
    DigestSink, FleetDigest, FleetRunner, NetworkTopology, ScenarioMatrix, SloTally, Workload,
    WorldSim,
};
use ehdl_netsim::DeviceTimeline;

fn quick_executor() -> ExecutorConfig {
    ExecutorConfig {
        stall_outages: 6,
        ..ExecutorConfig::default()
    }
}

/// A matrix mixing solo and networked topologies over a deterministic
/// and a stochastic environment.
fn networked_matrix() -> ScenarioMatrix {
    ScenarioMatrix::new()
        .environments(vec![catalog::bench_supply(), catalog::office_rf()])
        .workloads(vec![Workload::Har { samples: 4 }])
        .strategies(vec![Strategy::Sonic])
        .topologies(vec![
            NetworkTopology::solo(),
            NetworkTopology::line(5, 1.0, 0.5),
        ])
        .runs(2)
        .executor(quick_executor())
}

#[test]
fn worker_count_does_not_change_the_networked_digest() {
    let matrix = networked_matrix();
    let digest = |workers: usize| {
        FleetRunner::builder()
            .workers(workers)
            .sink(DigestSink::new())
            .run(&matrix)
            .unwrap()
    };
    let one = digest(1);
    let four = digest(4);
    assert_eq!(one, four);
    // The wire encoding is canonical, so the serialized digests agree
    // byte for byte — the checksum CI smoke jobs pin.
    assert_eq!(one.to_json(), four.to_json());
    // The networked half actually exercised the gateway.
    assert!(one.slo.polls > 0, "no gateway polls folded");
    assert_eq!(one.slo.worlds, 2, "one world per networked scenario");
}

#[test]
fn per_scenario_shards_merge_to_the_whole_sweep_digest() {
    let matrix = networked_matrix();
    let runner = FleetRunner::new(2);
    let whole = runner.run_with_sink(&matrix, DigestSink::new()).unwrap();
    // The shard coordinator's merge unit is the per-scenario record, in
    // matrix order — the same left-fold the whole-sweep runner performs,
    // so the reassembly is bit-identical (coarser groupings would change
    // the floating-point summation tree). Exercised here without
    // processes: one range per scenario, merged in matrix order.
    let mut merged = FleetDigest::new();
    for scenario in 0..matrix.len() {
        let part = runner
            .run_range_with_sink(&matrix, scenario..scenario + 1, DigestSink::new())
            .unwrap();
        merged.merge(&part);
    }
    assert_eq!(merged, whole);
    assert_eq!(merged.to_json(), whole.to_json());
}

#[test]
fn single_device_topology_is_bit_identical_to_the_solo_executor() {
    // A hand-built 1-device topology is *not* the solo sentinel, so it
    // routes through the world executor: shared-field allocation,
    // timeline recording, gateway resolution and all.
    let one_device = NetworkTopology {
        devices: 1,
        spacing: 0.0,
        field_budget: 1.0,
        poll_period_s: 0.25,
        poll_offset_s: 0.0,
        freshness_s: 10.0,
        poll_retries: 0,
    };
    assert!(!one_device.is_solo());
    let base = ScenarioMatrix::new()
        .environments(vec![catalog::bench_supply(), catalog::office_rf()])
        .workloads(vec![Workload::Har { samples: 4 }])
        .strategies(vec![Strategy::Sonic])
        .runs(2)
        .executor(quick_executor());
    let solo = FleetRunner::new(2)
        .run_with_sink(&base.clone(), DigestSink::new())
        .unwrap();
    let world = FleetRunner::new(2)
        .run_with_sink(&base.topologies(vec![one_device]), DigestSink::new())
        .unwrap();
    // The gateway saw the run...
    assert!(world.slo.polls > 0);
    assert_ne!(world.slo, SloTally::default());
    // ...and every physical record is unchanged: substituting the slo
    // block makes the digests equal, so run counts, outcomes, energy,
    // latency sketches and fault tallies all match bit for bit.
    let mut world_sans_slo = world.clone();
    world_sans_slo.slo = solo.slo.clone();
    assert_eq!(world_sans_slo, solo);
}

#[test]
fn gateway_accounting_is_conserved() {
    let matrix = ScenarioMatrix::new()
        .environments(vec![catalog::piezo_gait()])
        .workloads(vec![Workload::Har { samples: 4 }])
        .strategies(vec![Strategy::Sonic])
        .topologies(vec![NetworkTopology::line(4, 2.0, 0.2)])
        .runs(2)
        .executor(quick_executor());
    let digest = FleetRunner::new(2)
        .run_with_sink(&matrix, DigestSink::new())
        .unwrap();
    let s = &digest.slo;
    assert_eq!(s.worlds, 1);
    assert_eq!(s.devices, 4);
    assert_eq!(
        s.served + s.missed_asleep + s.missed_stale,
        s.polls,
        "every poll is served or attributed to exactly one miss cause"
    );
    assert_eq!(
        s.staleness_s.count(),
        s.served,
        "one staleness sample per served poll"
    );
    assert!(s.starved_devices <= s.devices);
    assert!(s.served_fraction() >= 0.0 && s.served_fraction() <= 1.0);
}

#[test]
fn world_resolution_ignores_device_registration_order() {
    // Two timelines with different shapes, registered in opposite
    // orders: the gateway's schedule (and therefore the outcome) is
    // keyed by device id, never by registration order.
    let timeline = |dark: (f64, f64), end: f64| {
        let mut rec = TimelineRecorder::new();
        rec.event(ExecEvent::DarkSkip {
            t0: dark.0,
            t1: dark.1,
            joules: 0.0,
        });
        rec.event(ExecEvent::RunEnd {
            t: end,
            outcome: RunOutcome::Completed,
        });
        let mut t = DeviceTimeline::new();
        t.push_run(&rec.take());
        t
    };
    let topology = NetworkTopology::line(2, 1.0, 0.3);
    let mut forward = WorldSim::new(topology);
    forward.add_device(0, timeline((0.2, 0.8), 2.0));
    forward.add_device(1, timeline((1.0, 1.4), 3.0));
    let mut reverse = WorldSim::new(topology);
    reverse.add_device(1, timeline((1.0, 1.4), 3.0));
    reverse.add_device(0, timeline((0.2, 0.8), 2.0));
    assert_eq!(forward.resolve(), reverse.resolve());
}
