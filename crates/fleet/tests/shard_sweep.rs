//! End-to-end tests of the sharded sweep coordinator: subprocess
//! workers must reproduce the in-process digest bit for bit, survive
//! kills and truncated partials through the checkpoint frontier, and
//! degrade gracefully when a shard fails permanently.
//!
//! These live in the fleet crate (not the workspace root) so
//! `CARGO_BIN_EXE_fleet_shard_worker` resolves and forces the worker
//! binary to build.

use ehdl::ehsim::catalog;
use ehdl::{CalibrationConfig, Error, ShardError, Strategy};
use ehdl_fleet::{
    DigestSink, FaultSpec, FleetDigest, FleetRunner, GroupAxis, GroupBySink, GroupedDigest,
    ScenarioMatrix, ShardCoordinator, ShardEventKind, ShardReport,
};
use std::path::PathBuf;
use std::time::Duration;

const WORKER: &str = env!("CARGO_BIN_EXE_fleet_shard_worker");

/// A 16-scenario matrix that exercises every record label: two
/// environments, two strategies, two seeds, and a two-point energy
/// budget axis.
fn quick_matrix() -> ScenarioMatrix {
    ScenarioMatrix::new()
        .environments(vec![catalog::bench_supply(), catalog::office_rf()])
        .strategies(vec![Strategy::Sonic, Strategy::Flex])
        .seeds(vec![0, 1])
        .energy_budgets_nj(vec![None, Some(2_000_000.0)])
        .calibration(CalibrationConfig {
            samples: 4,
            percentile: 0.9,
        })
}

const AXES: [GroupAxis; 2] = [GroupAxis::Strategy, GroupAxis::EnergyBudget];

/// The ground truth: the same matrix swept in-process through
/// `DigestSink` and two `GroupBySink`s.
fn in_process(matrix: &ScenarioMatrix) -> (FleetDigest, Vec<GroupedDigest>) {
    let (digest, (by_strategy, by_budget)) = FleetRunner::builder()
        .workers(2)
        .sink((
            DigestSink::new(),
            (GroupBySink::new(AXES[0]), GroupBySink::new(AXES[1])),
        ))
        .run(matrix)
        .unwrap();
    (digest, vec![by_strategy, by_budget])
}

fn coordinator(shard_size: usize, fault: Option<&str>) -> ShardCoordinator {
    let mut args = Vec::new();
    if let Some(spec) = fault {
        args.extend(["--fault".to_string(), spec.to_string()]);
    }
    ShardCoordinator::new(shard_size)
        .concurrency(2)
        .worker_threads(2)
        .backoff(Duration::from_millis(10))
        .group_by(AXES.to_vec())
        .worker_command(WORKER, args)
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ehdl-shard-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn assert_matches_in_process(report: &ShardReport, matrix: &ScenarioMatrix) {
    let (digest, grouped) = in_process(matrix);
    assert!(report.is_complete(), "{report}");
    assert_eq!(
        report.digest, digest,
        "sharded digest must be bit-identical"
    );
    assert_eq!(
        report.grouped, grouped,
        "grouped digests must be bit-identical"
    );
}

#[test]
fn subprocess_shards_reproduce_the_in_process_digest_at_any_shard_count() {
    let matrix = quick_matrix();
    let (digest, grouped) = in_process(&matrix);
    assert_eq!(digest.scenarios, 16);
    // 1, 2 and 4 subprocess shards: all bit-identical to in-process.
    for shard_size in [16, 8, 4] {
        let report = coordinator(shard_size, None).run(&matrix).unwrap();
        assert!(report.is_complete());
        assert_eq!(report.shards, 16_usize.div_ceil(shard_size));
        assert_eq!(report.digest, digest, "shard_size {shard_size}");
        assert_eq!(report.grouped, grouped, "shard_size {shard_size}");
        assert_eq!(report.total_scenarios, 16);
        assert_eq!(report.retries, 0);
        assert_eq!(report.failed, vec![]);
        assert_eq!(report.events, vec![], "a clean sweep records no incidents");
    }
}

#[test]
fn killed_worker_is_retried_and_the_digest_is_unchanged() {
    let matrix = quick_matrix();
    let dir = tmp_dir("retry");
    // Shard 1 aborts mid-write on its first attempt (a sentinel in the
    // checkpoint dir remembers the trip), then succeeds on retry.
    let report = coordinator(4, Some("kill-once:1"))
        .checkpoint_dir(&dir)
        .run(&matrix)
        .unwrap();
    assert!(report.retries >= 1, "{report}");
    // The retry is a structured event naming the shard and attempt.
    let retry = report
        .events
        .iter()
        .find(|e| e.kind == ShardEventKind::Retry)
        .expect("a retried shard records a retry event");
    assert_eq!(retry.shard, 1);
    assert_eq!(retry.attempt, 1);
    assert!(!retry.detail.is_empty());
    assert_eq!(retry.kind.name(), "retry");
    // Workers remove their heartbeat files once their shard lands.
    let leftover: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("heartbeat-"))
        .collect();
    assert_eq!(leftover, Vec::<String>::new());
    assert_matches_in_process(&report, &matrix);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn permanently_failing_shard_degrades_instead_of_aborting_then_resume_completes() {
    let matrix = quick_matrix();
    let dir = tmp_dir("resume");
    // Pass 1: shard 1 dies mid-write on every attempt and exhausts its
    // retries. The sweep still returns Ok: the frontier covers shard 0,
    // the failure is reported as a scenario range, and the completed
    // partials past the gap stay on disk.
    let degraded = coordinator(4, Some("kill:1"))
        .retries(1)
        .checkpoint_dir(&dir)
        .run(&matrix)
        .unwrap();
    assert!(!degraded.is_complete());
    assert_eq!(degraded.merged_shards, 1);
    assert_eq!(degraded.digest.scenarios, 4);
    assert_eq!(degraded.failed.len(), 1);
    assert_eq!(degraded.failed[0].shard, 1);
    assert_eq!(degraded.failed[0].start, 4);
    assert_eq!(degraded.failed[0].len, 4);
    assert!(degraded.retries >= 1);
    assert!(
        !degraded.failed[0].error.is_empty(),
        "the failed range carries the worker's last error"
    );
    // The event log ends the shard's story with a permanent failure.
    let failed = degraded
        .events
        .iter()
        .find(|e| e.kind == ShardEventKind::Failed)
        .expect("a permanent failure records a failed event");
    assert_eq!(failed.shard, 1);
    assert!(failed.attempt >= 2, "retried before giving up: {failed:?}");
    let text = degraded.to_string();
    assert!(text.contains("FAILED shard 1"), "{text}");
    // Shards 2 and 3 completed; their partials await the resume.
    assert!(dir.join("partial-000002.ehsp").is_file());
    assert!(dir.join("partial-000003.ehsp").is_file());

    // Sabotage one surviving partial: chop it mid-record. The resume
    // must detect the truncation and re-run that shard, not merge it.
    let partial = dir.join("partial-000002.ehsp");
    let bytes = std::fs::read(&partial).unwrap();
    std::fs::write(&partial, &bytes[..bytes.len() * 2 / 3]).unwrap();

    // Pass 2, fault removed: resumes from the merged prefix, re-runs
    // shard 1 and the truncated shard 2, reuses shard 3, and lands on
    // the bit-identical full digest.
    let resumed = coordinator(4, None)
        .checkpoint_dir(&dir)
        .run(&matrix)
        .unwrap();
    assert!(
        resumed.resumed_shards >= 2,
        "frontier + surviving partial should be reused: {resumed}"
    );
    assert_matches_in_process(&resumed, &matrix);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn rerunning_a_complete_sweep_resumes_entirely_from_the_frontier() {
    let matrix = quick_matrix();
    let dir = tmp_dir("memo");
    let first = coordinator(8, None)
        .checkpoint_dir(&dir)
        .run(&matrix)
        .unwrap();
    assert!(first.is_complete());
    // Second run: everything comes from the frontier; no workers run.
    let second = coordinator(8, None)
        .checkpoint_dir(&dir)
        .run(&matrix)
        .unwrap();
    assert_eq!(second.resumed_shards, 2);
    assert_eq!(second.digest, first.digest);
    assert_eq!(second.grouped, first.grouped);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bad_plans_and_mismatched_checkpoints_are_typed_errors() {
    let matrix = quick_matrix();
    let shard_err = |result: Result<ShardReport, Error>| match result {
        Err(Error::Shard(e)) => e,
        other => panic!("expected a shard error, got {other:?}"),
    };
    // Zero shard size.
    assert!(matches!(
        shard_err(coordinator(0, None).run(&matrix)),
        ShardError::BadPlan { .. }
    ));
    // Shard larger than the matrix.
    assert!(matches!(
        shard_err(coordinator(17, None).run(&matrix)),
        ShardError::BadPlan { .. }
    ));
    // Empty matrix.
    assert!(matches!(
        shard_err(coordinator(4, None).run(&quick_matrix().seeds(vec![]))),
        ShardError::BadPlan { .. }
    ));
    // A checkpoint directory from a *different* sweep must refuse to
    // resume, not merge garbage.
    let dir = tmp_dir("mismatch");
    coordinator(8, None)
        .checkpoint_dir(&dir)
        .run(&matrix)
        .unwrap();
    let other = quick_matrix().seeds(vec![7, 8]);
    assert!(matches!(
        shard_err(coordinator(8, None).checkpoint_dir(&dir).run(&other)),
        ShardError::CheckpointMismatch { .. }
    ));
    // Same sweep, different shard size: also a different plan identity.
    assert!(matches!(
        shard_err(coordinator(4, None).checkpoint_dir(&dir).run(&matrix)),
        ShardError::CheckpointMismatch { .. }
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn fault_injected_sweeps_shard_bit_identically() {
    // A seeded fault axis rides the wire: subprocess workers rebuild
    // the fault plans from the job spec and must reproduce the
    // in-process digest bit for bit at any shard count, grouped by
    // fault label included.
    let storm = FaultSpec {
        seed: 5,
        reset_per_op: 2e-4,
        sag_per_op: 1e-3,
        sag_factor: 1.5,
        tear_per_commit: 0.1,
        corrupt_per_restore: 0.25,
        burst_len: 0,
        flip_per_commit_bit: 0.0,
        wear: ehdl_fleet::WearCurve::NONE,
    };
    let matrix = ScenarioMatrix::new()
        .environments(vec![catalog::bench_supply(), catalog::office_rf()])
        .strategies(vec![Strategy::Flex])
        .faults(vec![FaultSpec::none(), storm])
        .calibration(CalibrationConfig {
            samples: 4,
            percentile: 0.9,
        });
    let (digest, by_fault) = FleetRunner::builder()
        .workers(2)
        .sink((DigestSink::new(), GroupBySink::new(GroupAxis::Fault)))
        .run(&matrix)
        .unwrap();
    assert_eq!(digest.scenarios, 4);
    assert!(digest.resilience.faulted_runs > 0);
    assert_eq!(digest.resilience.silent_corruptions, 0);

    for shard_size in [4, 2, 1] {
        let report = ShardCoordinator::new(shard_size)
            .concurrency(2)
            .worker_threads(2)
            .backoff(Duration::from_millis(10))
            .group_by(vec![GroupAxis::Fault])
            .worker_command(WORKER, Vec::new())
            .run(&matrix)
            .unwrap();
        assert!(report.is_complete(), "shard_size {shard_size}: {report}");
        assert_eq!(report.digest, digest, "shard_size {shard_size}");
        assert_eq!(
            report.grouped,
            vec![by_fault.clone()],
            "shard_size {shard_size}"
        );
    }
}

#[test]
fn an_unspawnable_worker_degrades_every_shard() {
    let matrix = quick_matrix();
    let report = ShardCoordinator::new(8)
        .worker_command("/nonexistent/fleet_shard_worker", Vec::new())
        .retries(0)
        .backoff(Duration::from_millis(1))
        .run(&matrix)
        .unwrap();
    assert_eq!(report.merged_shards, 0);
    assert_eq!(report.failed.len(), 2);
    assert_eq!(report.digest, FleetDigest::new());
}

/// Satellite determinism bar for retry backoff: the jittered schedule
/// is a pure function of (seed, shard, attempt), so a re-run of the
/// same coordinator configuration retries at exactly the same offsets,
/// while simultaneous failures across shards never retry in lockstep.
#[test]
fn retry_backoff_schedule_is_reproducible_per_seed() {
    use ehdl_fleet::retry_backoff;
    let base = Duration::from_millis(100);
    let schedule = |seed: u64| -> Vec<Duration> {
        (0..8)
            .flat_map(|shard| (1..=3).map(move |attempt| retry_backoff(base, seed, shard, attempt)))
            .collect()
    };
    // Bit-identical on replay, different under a different seed.
    assert_eq!(schedule(42), schedule(42));
    assert_ne!(schedule(42), schedule(43));
    // Same-attempt delays are spread, not lockstep: all eight shards'
    // first retries land at distinct offsets within [base/2, base).
    let firsts: Vec<Duration> = (0..8).map(|s| retry_backoff(base, 42, s, 1)).collect();
    let mut unique = firsts.clone();
    unique.sort();
    unique.dedup();
    assert_eq!(unique.len(), firsts.len(), "{firsts:?}");
    for d in &firsts {
        assert!(*d >= base / 2 && *d < base, "{d:?}");
    }
}

/// The integrity axis rides the shard wire: a bit-flip storm swept
/// across all three schemes reproduces the in-process digest bit for
/// bit from subprocess workers at two shard sizes, grouped by scheme —
/// silent corruption in the `none` group, zero in the guarded ones.
#[test]
fn integrity_sweeps_shard_bit_identically_at_two_shard_sizes() {
    use ehdl::ehsim::{Integrity, WearCurve};
    use ehdl::Strategy;
    let storm = FaultSpec {
        seed: 11,
        reset_per_op: 0.01,
        flip_per_commit_bit: 2e-4,
        wear: WearCurve {
            endurance_commits: 20_000,
        },
        ..FaultSpec::none()
    };
    let matrix = ScenarioMatrix::new()
        .environments(vec![catalog::bench_supply(), catalog::office_rf()])
        .strategies(vec![Strategy::Sonic])
        .faults(vec![storm])
        .integrities(Integrity::ALL.to_vec())
        .calibration(CalibrationConfig {
            samples: 4,
            percentile: 0.9,
        });
    assert_eq!(matrix.len(), 2 * 3);
    let (digest, by_scheme) = FleetRunner::builder()
        .workers(2)
        .sink((DigestSink::new(), GroupBySink::new(GroupAxis::Integrity)))
        .run(&matrix)
        .unwrap();
    assert!(digest.integrity.flips_injected > 0);
    assert!(by_scheme.get("none").unwrap().integrity.silent_restores > 0);
    assert_eq!(
        by_scheme
            .get("checksum")
            .unwrap()
            .resilience
            .silent_corruptions,
        0
    );
    assert_eq!(
        by_scheme
            .get("secded")
            .unwrap()
            .resilience
            .silent_corruptions,
        0
    );

    for shard_size in [4, 2] {
        let report = ShardCoordinator::new(shard_size)
            .concurrency(2)
            .worker_threads(2)
            .backoff(Duration::from_millis(10))
            .group_by(vec![GroupAxis::Integrity])
            .worker_command(WORKER, Vec::new())
            .run(&matrix)
            .unwrap();
        assert!(report.is_complete(), "shard_size {shard_size}: {report}");
        assert_eq!(report.digest, digest, "shard_size {shard_size}");
        assert_eq!(
            report.grouped,
            vec![by_scheme.clone()],
            "shard_size {shard_size}"
        );
    }
}
