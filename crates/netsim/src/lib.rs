//! # ehdl-netsim — networked-fleet world simulation
//!
//! The paper's deployment story is not one device alone in a lab: it is
//! a *fleet* of intermittent devices sharing a harvest field and serving
//! inferences to an uplink. This crate adds that world model on top of
//! the single-device executor, without touching it:
//!
//! * [`NetworkTopology`] — how many devices, how the shared field is
//!   split among them, and the gateway's polling schedule. A value type
//!   with a deterministic [`label`](NetworkTopology::label), usable as a
//!   sweep-matrix axis.
//! * [`SharedField`] — one RF source with per-device path loss: device
//!   `i`'s harvester is attenuated by a scale factor computed once, in
//!   canonical device-id order, so the allocation is bit-deterministic
//!   regardless of the order devices are later simulated in.
//! * [`DeviceTimeline`] — a device's availability over world time,
//!   assembled from per-run
//!   [`RunTimeline`](ehdl_ehsim::RunTimeline)s captured by the
//!   executor's probe layer. The executor's closed-form dark-phase
//!   solvers already advance the device between interaction points;
//!   the timeline records those points, nothing is re-simulated.
//! * [`WorldSim`] — the discrete-event composition: a duty-cycled
//!   gateway polls devices on its schedule, and each poll resolves
//!   against the target device's timeline (awake? fresh result?) into
//!   an [`SloOutcome`] — served/missed counts and staleness samples,
//!   the fleet's end-to-end service metric.
//!
//! Determinism contract: [`WorldSim::resolve`] depends only on the
//! topology and the per-device timelines, never on the order
//! [`add_device`](WorldSim::add_device) was called in. Polls are
//! resolved in schedule order and staleness samples are emitted in that
//! same order, so a digest built from an [`SloOutcome`] is bit-identical
//! at any worker or shard count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ehdl_ehsim::RunTimeline;
use std::error::Error;
use std::fmt;

/// One point in the networked-scenario sweep axis: the device count,
/// the shared-field geometry, and the gateway's polling schedule.
///
/// The canonical [`solo`](NetworkTopology::solo) topology routes a
/// scenario through the classic single-device path (no world
/// simulation at all); every other topology — including hand-built
/// single-device ones, which is how the parity suite proves the world
/// path bit-identical to the solo path — runs under [`WorldSim`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkTopology {
    /// Number of devices sharing the field (`>= 1`).
    pub devices: u32,
    /// Path-loss spacing between adjacent devices (unitless distance
    /// step; `0` puts every device at the source, sharing equally).
    pub spacing: f64,
    /// Total field power as a multiple of the scenario environment's
    /// nominal power. The per-device scales sum to this budget, so
    /// chargers genuinely compete: more devices, thinner slices.
    pub field_budget: f64,
    /// Gateway poll period in world seconds (`> 0`). Poll `k` fires at
    /// `poll_offset_s + k * poll_period_s` and targets device
    /// `k mod devices`.
    pub poll_period_s: f64,
    /// Offset of the first poll in world seconds (`>= 0`).
    pub poll_offset_s: f64,
    /// A result older than this at poll time is stale, not served
    /// (`> 0`).
    pub freshness_s: f64,
    /// How many extra attempts a poll that finds its device asleep
    /// gets, each one duty-cycle slot (`poll_period_s`) later, before
    /// it counts as `missed_asleep`. `0` (the default) reproduces the
    /// classic single-attempt gateway bit-identically.
    pub poll_retries: u32,
}

impl NetworkTopology {
    /// The canonical solo topology: one device, the whole field,
    /// no gateway accounting. Scenarios carrying it run the classic
    /// single-device path bit-identically.
    pub fn solo() -> Self {
        NetworkTopology {
            devices: 1,
            spacing: 0.0,
            field_budget: 1.0,
            poll_period_s: 1.0,
            poll_offset_s: 0.0,
            freshness_s: 10.0,
            poll_retries: 0,
        }
    }

    /// A line-of-devices topology: `devices` nodes at distances
    /// `1 + i·spacing` from the source (inverse-square gains), full
    /// field budget, polled every `poll_period_s` with a 10 s
    /// freshness bound.
    pub fn line(devices: u32, spacing: f64, poll_period_s: f64) -> Self {
        NetworkTopology {
            devices,
            spacing,
            field_budget: 1.0,
            poll_period_s,
            poll_offset_s: 0.0,
            freshness_s: 10.0,
            poll_retries: 0,
        }
    }

    /// `true` only for the canonical [`solo`](NetworkTopology::solo)
    /// value — the routing predicate the fleet runner uses.
    pub fn is_solo(&self) -> bool {
        *self == NetworkTopology::solo()
    }

    /// Validates the topology: at least one device, finite non-negative
    /// spacing and offset, positive finite budget, period and freshness.
    pub fn validate(&self) -> Result<(), TopologyError> {
        if self.devices == 0 {
            return Err(TopologyError::NoDevices);
        }
        let fields = [
            ("spacing", self.spacing, 0.0),
            ("field_budget", self.field_budget, f64::MIN_POSITIVE),
            ("poll_period_s", self.poll_period_s, f64::MIN_POSITIVE),
            ("poll_offset_s", self.poll_offset_s, 0.0),
            ("freshness_s", self.freshness_s, f64::MIN_POSITIVE),
        ];
        for (field, value, min) in fields {
            if !value.is_finite() || value < min {
                return Err(TopologyError::FieldOutOfRange { field, value });
            }
        }
        Ok(())
    }

    /// Deterministic short label for scenario names, report rows and
    /// shard records. The solo topology is `"solo"`.
    pub fn label(&self) -> String {
        if self.is_solo() {
            return "solo".to_owned();
        }
        let mut label = format!(
            "n{}:d{}:b{}:p{}:o{}:f{}",
            self.devices,
            self.spacing,
            self.field_budget,
            self.poll_period_s,
            self.poll_offset_s,
            self.freshness_s
        );
        if self.poll_retries > 0 {
            label.push_str(&format!(":r{}", self.poll_retries));
        }
        label
    }
}

impl Default for NetworkTopology {
    fn default() -> Self {
        NetworkTopology::solo()
    }
}

impl fmt::Display for NetworkTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Rejection reasons from [`NetworkTopology::validate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TopologyError {
    /// `devices` was zero.
    NoDevices,
    /// A numeric field was non-finite or below its minimum.
    FieldOutOfRange {
        /// Which topology field failed.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::NoDevices => write!(f, "topology needs at least one device"),
            TopologyError::FieldOutOfRange { field, value } => {
                write!(f, "topology field `{field}` out of range: {value}")
            }
        }
    }
}

impl Error for TopologyError {}

/// One RF source split among N chargers by path loss.
///
/// Device `i` sits at distance `1 + i·spacing` and has inverse-square
/// gain `gᵢ = 1/(1 + i·spacing)²`; its share of the field is
/// `scaleᵢ = budget · gᵢ / Σⱼ gⱼ`. The gains and their sum are computed
/// once, in ascending device-id order, so every scale is a pure
/// function of the topology — bit-identical however the caller later
/// iterates devices. For a single device at full budget the share is
/// `1.0` *exactly* (IEEE `x/x`), which is what makes single-device
/// world runs bit-identical to solo runs.
#[derive(Debug, Clone, PartialEq)]
pub struct SharedField {
    scales: Vec<f64>,
}

impl SharedField {
    /// Computes the per-device allocation for a topology.
    pub fn for_topology(topology: &NetworkTopology) -> Self {
        let n = topology.devices as usize;
        let gains: Vec<f64> = (0..n)
            .map(|i| {
                let d = 1.0 + i as f64 * topology.spacing;
                1.0 / (d * d)
            })
            .collect();
        let total: f64 = gains.iter().sum();
        let scales = gains
            .iter()
            .map(|g| topology.field_budget * (g / total))
            .collect();
        SharedField { scales }
    }

    /// Device `i`'s share of the field (a harvester power multiplier).
    pub fn scale(&self, device: u32) -> f64 {
        self.scales[device as usize]
    }

    /// All shares, in device-id order.
    pub fn scales(&self) -> &[f64] {
        &self.scales
    }

    /// The summed allocation (equals the topology's budget up to float
    /// rounding).
    pub fn total(&self) -> f64 {
        self.scales.iter().sum()
    }
}

/// A device's availability over *world* time: its runs laid end to end,
/// with dark (recharging) intervals and result-completion instants in
/// absolute world seconds.
///
/// Built by pushing each run's [`RunTimeline`] in run order; the run's
/// local clock is offset by the accumulated end of the previous runs,
/// exactly as the device would execute them back to back.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceTimeline {
    dark: Vec<(f64, f64)>,
    completions: Vec<f64>,
    end_t: f64,
}

impl DeviceTimeline {
    /// An empty timeline (device not yet simulated).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one run, offset to start where the previous run ended.
    /// Completed runs contribute a result-completion instant at their
    /// (offset) end.
    pub fn push_run(&mut self, run: &RunTimeline) {
        let offset = self.end_t;
        for &(t0, t1) in run.dark_intervals() {
            self.dark.push((offset + t0, offset + t1));
        }
        if run.completed() {
            self.completions.push(offset + run.end_t());
        }
        self.end_t = offset + run.end_t();
    }

    /// World time at which the device's last run ends; past this point
    /// the device idles awake with whatever result it last produced.
    pub fn end_t(&self) -> f64 {
        self.end_t
    }

    /// Result-completion instants, ascending.
    pub fn completions(&self) -> &[f64] {
        &self.completions
    }

    /// Is the device awake (able to answer a poll) at world time `t`?
    /// Dark intervals are half-open `[t0, t1)`.
    pub fn awake_at(&self, t: f64) -> bool {
        let idx = self.dark.partition_point(|&(t0, _)| t0 <= t);
        if idx == 0 {
            return true;
        }
        let (_, t1) = self.dark[idx - 1];
        t >= t1
    }

    /// The most recent result completed at or before `t`, if any.
    pub fn last_completion_before(&self, t: f64) -> Option<f64> {
        let idx = self.completions.partition_point(|&c| c <= t);
        if idx == 0 {
            None
        } else {
            Some(self.completions[idx - 1])
        }
    }
}

/// How one gateway poll resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollResult {
    /// The device was awake with a fresh result: served.
    Served,
    /// The device was dark (recharging) at poll time.
    MissedAsleep,
    /// The device was awake but had no result, or only a stale one.
    MissedStale,
}

/// End-to-end service metrics for one world: what the gateway's polls
/// actually got. Raw counters plus the staleness samples (one per
/// served poll, in poll order) — the fleet layer folds the samples into
/// its mergeable quantile sketch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SloOutcome {
    /// Devices in the world.
    pub devices: u32,
    /// Polls the gateway issued within the world's horizon.
    pub polls: u64,
    /// Polls answered with a fresh result.
    pub served: u64,
    /// Polls that found the device dark.
    pub missed_asleep: u64,
    /// Polls that found the device awake but without a fresh result.
    pub missed_stale: u64,
    /// Devices that never served a single poll.
    pub starved_devices: u64,
    /// Staleness (poll time minus result completion) of every served
    /// poll, in poll order, seconds.
    pub staleness_s: Vec<f64>,
}

impl SloOutcome {
    /// Fraction of polls served, in `[0, 1]` (zero when no polls fired).
    pub fn served_fraction(&self) -> f64 {
        if self.polls == 0 {
            0.0
        } else {
            self.served as f64 / self.polls as f64
        }
    }
}

/// The discrete-event world composition: N device timelines under one
/// polling gateway.
///
/// Devices are registered by id (any order); [`resolve`](WorldSim::resolve)
/// then walks the poll schedule — jumping from poll to poll, never
/// ticking — and resolves each poll against its target device's
/// timeline. The walk visits polls in ascending time, so the outcome
/// (including sample order) is a pure function of topology + timelines.
#[derive(Debug, Clone)]
pub struct WorldSim {
    topology: NetworkTopology,
    devices: Vec<Option<DeviceTimeline>>,
}

impl WorldSim {
    /// A world with no devices registered yet.
    ///
    /// # Panics
    ///
    /// Panics if the topology fails [`NetworkTopology::validate`].
    pub fn new(topology: NetworkTopology) -> Self {
        topology.validate().unwrap_or_else(|e| panic!("{e}"));
        WorldSim {
            topology,
            devices: vec![None; topology.devices as usize],
        }
    }

    /// Registers device `id`'s timeline. Order does not matter; the
    /// resolved outcome is identical for any registration order.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range id or a duplicate registration.
    pub fn add_device(&mut self, id: u32, timeline: DeviceTimeline) {
        let slot = &mut self.devices[id as usize];
        assert!(slot.is_none(), "device {id} registered twice");
        *slot = Some(timeline);
    }

    /// Resolves the gateway's polls against every device timeline.
    ///
    /// The horizon is the latest device end: polls fire at
    /// `offset + k·period` for `k = 0, 1, …` while they land at or
    /// before the horizon, each targeting device `k mod n`. A poll is
    /// served when its device is awake and holds a result no older
    /// than the freshness bound; otherwise it misses as asleep or
    /// stale. A device past its own end idles awake with its last
    /// result (which ages into staleness like any other).
    ///
    /// # Panics
    ///
    /// Panics if any device was never registered.
    pub fn resolve(&self) -> SloOutcome {
        let n = self.topology.devices;
        let devices: Vec<&DeviceTimeline> = (0..n as usize)
            .map(|id| {
                self.devices[id]
                    .as_ref()
                    .unwrap_or_else(|| panic!("device {id} never registered"))
            })
            .collect();
        let horizon = devices
            .iter()
            .map(|d| d.end_t())
            .fold(0.0f64, |a, b| if b > a { b } else { a });
        let mut outcome = SloOutcome {
            devices: n,
            ..SloOutcome::default()
        };
        let mut served_by_device = vec![false; n as usize];
        let mut k: u64 = 0;
        loop {
            let t = self.topology.poll_offset_s + k as f64 * self.topology.poll_period_s;
            if t > horizon {
                break;
            }
            let id = (k % u64::from(n)) as usize;
            outcome.polls += 1;
            // An asleep device gets `poll_retries` further attempts,
            // each one duty-cycle slot later, before the poll counts
            // as missed. A retry that wakes the device resolves at the
            // retry time (including its staleness).
            let mut poll_t = t;
            let mut result = poll_device(devices[id], poll_t, self.topology.freshness_s);
            let mut retries = self.topology.poll_retries;
            while result == PollResult::MissedAsleep && retries > 0 {
                retries -= 1;
                poll_t += self.topology.poll_period_s;
                result = poll_device(devices[id], poll_t, self.topology.freshness_s);
            }
            match result {
                PollResult::Served => {
                    outcome.served += 1;
                    served_by_device[id] = true;
                    // last_completion_before(poll_t) is Some by
                    // construction of a served poll.
                    let done = devices[id].last_completion_before(poll_t).unwrap_or(poll_t);
                    outcome.staleness_s.push(poll_t - done);
                }
                PollResult::MissedAsleep => outcome.missed_asleep += 1,
                PollResult::MissedStale => outcome.missed_stale += 1,
            }
            k += 1;
        }
        outcome.starved_devices = served_by_device.iter().filter(|&&s| !s).count() as u64;
        outcome
    }
}

/// Resolves one poll against one device timeline.
fn poll_device(device: &DeviceTimeline, t: f64, freshness_s: f64) -> PollResult {
    if !device.awake_at(t) {
        return PollResult::MissedAsleep;
    }
    match device.last_completion_before(t) {
        Some(done) if t - done <= freshness_s => PollResult::Served,
        _ => PollResult::MissedStale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehdl_ehsim::{ExecEvent, ExecProbe, RunOutcome, TimelineRecorder};

    fn run_timeline(dark: &[(f64, f64)], end: f64, completed: bool) -> RunTimeline {
        let mut rec = TimelineRecorder::new();
        for &(t0, t1) in dark {
            rec.event(ExecEvent::DarkSkip {
                t0,
                t1,
                joules: 1e-5,
            });
        }
        rec.event(ExecEvent::RunEnd {
            t: end,
            outcome: if completed {
                RunOutcome::Completed
            } else {
                RunOutcome::OutageLimit
            },
        });
        rec.take()
    }

    #[test]
    fn solo_topology_is_canonical_and_labelled() {
        let solo = NetworkTopology::solo();
        assert!(solo.is_solo());
        assert_eq!(solo.label(), "solo");
        assert_eq!(NetworkTopology::default(), solo);
        // Any deviation stops being solo — even one device with a
        // different gateway.
        let mut near = solo;
        near.poll_period_s = 0.5;
        assert!(!near.is_solo());
        assert!(near.label().starts_with("n1:"));
        assert!(solo.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_topologies() {
        let mut t = NetworkTopology::solo();
        t.devices = 0;
        assert_eq!(t.validate(), Err(TopologyError::NoDevices));
        let mut t = NetworkTopology::solo();
        t.poll_period_s = 0.0;
        assert!(matches!(
            t.validate(),
            Err(TopologyError::FieldOutOfRange {
                field: "poll_period_s",
                ..
            })
        ));
        let mut t = NetworkTopology::solo();
        t.spacing = f64::NAN;
        assert!(t.validate().is_err());
    }

    #[test]
    fn shared_field_sums_to_budget_and_decays_with_distance() {
        let topo = NetworkTopology::line(8, 0.5, 1.0);
        let field = SharedField::for_topology(&topo);
        assert_eq!(field.scales().len(), 8);
        assert!((field.total() - 1.0).abs() < 1e-12);
        for i in 1..8 {
            assert!(
                field.scale(i) < field.scale(i - 1),
                "farther devices harvest less"
            );
        }
    }

    #[test]
    fn single_device_full_budget_scale_is_exactly_one() {
        let mut topo = NetworkTopology::line(1, 0.7, 0.25);
        topo.field_budget = 1.0;
        let field = SharedField::for_topology(&topo);
        assert_eq!(field.scale(0), 1.0_f64);
    }

    #[test]
    fn zero_spacing_shares_equally() {
        let topo = NetworkTopology::line(4, 0.0, 1.0);
        let field = SharedField::for_topology(&topo);
        for i in 0..4 {
            assert_eq!(field.scale(i), 0.25);
        }
    }

    #[test]
    fn device_timeline_concatenates_runs_with_offsets() {
        let mut device = DeviceTimeline::new();
        device.push_run(&run_timeline(&[(0.2, 0.6)], 1.0, true));
        device.push_run(&run_timeline(&[(0.1, 0.4)], 0.8, false));
        assert_eq!(device.end_t(), 1.8);
        assert_eq!(device.completions(), &[1.0]);
        assert!(device.awake_at(0.1));
        assert!(!device.awake_at(0.3)); // first run's dark span
        assert!(!device.awake_at(1.2)); // second run's, offset by 1.0
        assert!(device.awake_at(1.5));
        assert_eq!(device.last_completion_before(0.5), None);
        assert_eq!(device.last_completion_before(1.7), Some(1.0));
    }

    #[test]
    fn polls_resolve_served_asleep_and_stale() {
        // One device: completes at t=1.0, dark over [1.2, 1.6), then
        // runs (incomplete) to t=2.0.
        let mut device = DeviceTimeline::new();
        device.push_run(&run_timeline(&[(0.2, 0.6)], 1.0, true));
        device.push_run(&run_timeline(&[(0.2, 0.6)], 1.0, false));
        let mut topo = NetworkTopology::line(1, 0.0, 0.5);
        topo.poll_offset_s = 0.05;
        topo.freshness_s = 0.7;
        let mut world = WorldSim::new(topo);
        world.add_device(0, device);
        let slo = world.resolve();
        // Polls at 0.05 (awake, no result yet: stale), 0.55 (dark),
        // 1.05 (served, staleness 0.05), 1.55 (dark — it lands in the
        // second run's [1.2, 1.6) span); 2.05 is past the 2.0 horizon.
        assert_eq!(slo.polls, 4);
        assert_eq!(slo.served, 1);
        assert_eq!(slo.missed_asleep, 2);
        assert_eq!(slo.missed_stale, 1);
        assert_eq!(slo.staleness_s.len(), 1);
        assert!((slo.staleness_s[0] - 0.05).abs() < 1e-12);
        assert_eq!(slo.starved_devices, 0);
        assert!((slo.served_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn poll_retries_rescue_asleep_polls_but_not_stale_ones() {
        // Same world as `polls_resolve_served_asleep_and_stale`, but
        // the gateway retries asleep polls once, one slot later.
        let build_device = || {
            let mut device = DeviceTimeline::new();
            device.push_run(&run_timeline(&[(0.2, 0.6)], 1.0, true));
            device.push_run(&run_timeline(&[(0.2, 0.6)], 1.0, false));
            device
        };
        let mut topo = NetworkTopology::line(1, 0.0, 0.5);
        topo.poll_offset_s = 0.05;
        topo.freshness_s = 0.7;
        topo.poll_retries = 1;
        assert!(topo.validate().is_ok());
        assert!(topo.label().ends_with(":r1"));
        let mut world = WorldSim::new(topo);
        world.add_device(0, build_device());
        let slo = world.resolve();
        // The 0.55 poll (dark) retries at 1.05 and is served with
        // staleness 0.05; the 1.55 poll retries at 2.05 where the
        // device idles awake but its 1.0 result is stale.
        assert_eq!(slo.polls, 4);
        assert_eq!(slo.served, 2);
        assert_eq!(slo.missed_asleep, 0);
        assert_eq!(slo.missed_stale, 2);
        assert_eq!(slo.staleness_s.len(), 2);
        assert!((slo.staleness_s[0] - 0.05).abs() < 1e-12);
        assert!((slo.staleness_s[1] - 0.05).abs() < 1e-12);

        // Retries disabled reproduces the classic gateway; the label
        // carries no retry suffix.
        topo.poll_retries = 0;
        assert!(!topo.label().contains(":r"));
        let mut world = WorldSim::new(topo);
        world.add_device(0, build_device());
        let baseline = world.resolve();
        assert_eq!(baseline.served, 1);
        assert_eq!(baseline.missed_asleep, 2);
    }

    #[test]
    fn freshness_bound_turns_old_results_stale() {
        let mut device = DeviceTimeline::new();
        device.push_run(&run_timeline(&[], 1.0, true));
        device.push_run(&run_timeline(&[], 9.0, false));
        let mut topo = NetworkTopology::line(1, 0.0, 4.0);
        topo.poll_offset_s = 2.0;
        topo.freshness_s = 1.5;
        let mut world = WorldSim::new(topo);
        world.add_device(0, device);
        let slo = world.resolve();
        // Polls at 2.0 (staleness 1.0: served) and 6.0 and 10.0
        // (staleness 5.0 and 9.0: stale).
        assert_eq!(slo.polls, 3);
        assert_eq!(slo.served, 1);
        assert_eq!(slo.missed_stale, 2);
        assert_eq!(slo.starved_devices, 0);
    }

    #[test]
    fn starved_devices_are_counted() {
        let mut served = DeviceTimeline::new();
        served.push_run(&run_timeline(&[], 1.0, true));
        let mut starved = DeviceTimeline::new();
        starved.push_run(&run_timeline(&[], 1.0, false));
        let mut topo = NetworkTopology::line(2, 0.0, 0.5);
        topo.poll_offset_s = 1.0;
        let mut world = WorldSim::new(topo);
        world.add_device(0, served);
        world.add_device(1, starved);
        let slo = world.resolve();
        assert!(slo.served > 0);
        assert_eq!(slo.starved_devices, 1);
    }

    #[test]
    fn resolve_is_independent_of_registration_order() {
        let topo = NetworkTopology::line(3, 0.4, 0.3);
        let timelines: Vec<DeviceTimeline> = (0..3)
            .map(|i| {
                let mut d = DeviceTimeline::new();
                let shift = 0.1 * i as f64;
                d.push_run(&run_timeline(&[(0.2 + shift, 0.7 + shift)], 1.1, i != 1));
                d.push_run(&run_timeline(&[(0.1, 0.5)], 1.3, true));
                d
            })
            .collect();
        let mut forward = WorldSim::new(topo);
        for (i, t) in timelines.iter().enumerate() {
            forward.add_device(i as u32, t.clone());
        }
        let mut backward = WorldSim::new(topo);
        for (i, t) in timelines.iter().enumerate().rev() {
            backward.add_device(i as u32, t.clone());
        }
        let a = forward.resolve();
        let b = backward.resolve();
        assert_eq!(a, b);
        // f64 payloads compare bit-for-bit too.
        let bits = |slo: &SloOutcome| -> Vec<u64> {
            slo.staleness_s.iter().map(|s| s.to_bits()).collect()
        };
        assert_eq!(bits(&a), bits(&b));
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let mut world = WorldSim::new(NetworkTopology::line(1, 0.0, 1.0));
        world.add_device(0, DeviceTimeline::new());
        world.add_device(0, DeviceTimeline::new());
    }

    #[test]
    #[should_panic(expected = "never registered")]
    fn missing_device_panics_at_resolve() {
        let world = WorldSim::new(NetworkTopology::line(2, 0.0, 1.0));
        world.resolve();
    }
}
