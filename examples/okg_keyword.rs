//! OKG: keyword spotting with an energy breakdown and the Figure 8
//! block-size study.
//!
//! The OKG model is almost entirely BCM FC layers (Table II), so it
//! showcases where the energy goes per hardware component (Fig 7(c))
//! and how the BCM block size trades latency/energy against accuracy
//! headroom (Fig 8).
//!
//! ```text
//! cargo run --release -p ehdl --example okg_keyword
//! ```

use ehdl::ace::{AceProgram, QuantizedModel};
use ehdl::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut model = ehdl::nn::zoo::okg();
    let data = ehdl::datasets::okg(60, 33);
    let deployment = Deployment::builder(&mut model, &data)
        .strategy(Strategy::Bare)
        .build()?;

    // Component-wise energy of one inference (Fig 7(c) style), from the
    // session's cached continuous-power pricing run.
    let mut session = deployment.session();
    let cost = session.continuous_cost();
    println!(
        "OKG inference: {:.2} ms, {}\nenergy breakdown:",
        cost.cycles.as_millis(16e6),
        cost.energy
    );
    for (component, energy) in session.continuous_meter().breakdown() {
        if energy.nanojoules() > 0.0 {
            println!("  {component:<12} {energy}");
        }
    }

    // Figure 8: the first FC layer (3456x512) as dense vs BCM with
    // blocks 32/64/128/256 — latency, energy and FRAM footprint.
    println!(
        "\nFig 8 sweep (first FC, 3456x512):\n{:<14} {:>10} {:>12} {:>12}",
        "variant", "ms", "energy", "KB weights"
    );
    let mut rng = ehdl::nn::WeightRng::new(99);
    // Dense baseline.
    let dense = ehdl::nn::Model::builder("fc-dense", &[3456])
        .layer(Layer::Dense(ehdl::nn::Dense::new(3456, 512, &mut rng)))
        .build()?;
    print_fc_row("dense (CPU)", &dense)?;
    for block in [32usize, 64, 128, 256] {
        let bcm = ehdl::nn::Model::builder(format!("fc-bcm{block}"), &[3456])
            .layer(Layer::BcmDense(ehdl::nn::BcmDense::new(
                3456, 512, block, &mut rng,
            )))
            .build()?;
        print_fc_row(&format!("BCM b={block}"), &bcm)?;
    }

    // One real classification to close the loop.
    let sample = &data.samples()[0];
    let outcome = session.infer(&sample.input)?;
    println!(
        "\nsample keyword: predicted class {} (label {})",
        outcome.prediction, sample.label
    );
    Ok(())
}

fn print_fc_row(label: &str, model: &Model) -> Result<(), Box<dyn std::error::Error>> {
    let q = QuantizedModel::from_model(model)?;
    let ace = AceProgram::compile(&q)?;
    let board = Board::msp430fr5994();
    let (cycles, energy) = ehdl::ace::report::total_cost(&ace, &board);
    println!(
        "{:<14} {:>10.2} {:>12} {:>12}",
        label,
        cycles.as_millis(16e6),
        energy.to_string(),
        q.fram_bytes() / 1024
    );
    Ok(())
}
