//! HAR: a batteryless wearable doing on-device activity recognition.
//!
//! Exercises the FC-heavy HAR model (where BCM's advantage is largest —
//! the paper reports its biggest SONIC speedup, 5.7×, here) and sweeps
//! several harvester profiles to show how FLEX behaves as the energy
//! environment degrades.
//!
//! ```text
//! cargo run --release -p ehdl --example har_wearable
//! ```

use ehdl::flex::compare::{compare, paper_supply};
use ehdl::flex::strategies;
use ehdl::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut model = ehdl::nn::zoo::har();
    let data = ehdl::datasets::har(80, 21);
    let deployed = ehdl::pipeline::deploy(&mut model, &data)?;

    // Continuous-power comparison (Fig 7(a) column for HAR).
    let (harvester, capacitor) = paper_supply();
    let cmp = compare(&deployed.quantized, &harvester, &capacitor, false)?;
    println!("{cmp}");
    println!(
        "ACE+FLEX speedups: {:.1}x vs BASE, {:.1}x vs SONIC, {:.1}x vs TAILS\n",
        cmp.speedup_over("BASE"),
        cmp.speedup_over("SONIC"),
        cmp.speedup_over("TAILS"),
    );

    // Harvester sweep: the same FLEX inference under increasingly harsh
    // power. Wall time stretches (more charging), active time and
    // checkpoint overhead stay nearly flat — the FLEX property.
    println!(
        "{:<28} {:>9} {:>12} {:>12} {:>10}",
        "harvester", "outages", "active ms", "wall ms", "ckpt %"
    );
    let profiles: Vec<(String, Harvester)> = vec![
        ("square 2 mW 50%".into(), Harvester::square(0.002, 0.05, 0.5)),
        ("square 1.5 mW 40%".into(), Harvester::square(0.0015, 0.05, 0.4)),
        ("sine 3 mW peak".into(), Harvester::sine(0.003, 0.08)),
        ("bursts 4 mW p=0.35".into(), Harvester::bursts(0.004, 0.01, 0.35, 9)),
    ];
    let (_, bench_cap) = ehdl::flex::compare::paper_supply();
    let program = strategies::flex_program(&deployed.program);
    for (label, h) in profiles {
        let mut board = Board::msp430fr5994();
        let mut supply = PowerSupply::new(h, bench_cap.clone());
        let report = IntermittentExecutor::default().run(&program, &mut board, &mut supply);
        println!(
            "{:<28} {:>9} {:>12.2} {:>12.2} {:>10.2}",
            label,
            report.outages,
            report.active_seconds * 1e3,
            report.wall_seconds * 1e3,
            100.0 * report.checkpoint_overhead()
        );
        assert!(report.completed(), "FLEX must survive {label}");
    }
    Ok(())
}
