//! HAR: a batteryless wearable doing on-device activity recognition.
//!
//! Exercises the FC-heavy HAR model (where BCM's advantage is largest —
//! the paper reports its biggest SONIC speedup, 5.7×, here) and sweeps
//! several harvester profiles to show how FLEX behaves as the energy
//! environment degrades.
//!
//! ```text
//! cargo run --release -p ehdl --example har_wearable
//! ```

use ehdl::flex::compare::{compare, paper_supply};
use ehdl::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut model = ehdl::nn::zoo::har();
    let data = ehdl::datasets::har(80, 21);
    let deployment = Deployment::builder(&mut model, &data)
        .strategy(Strategy::Flex)
        .build()?;

    // Continuous-power comparison (Fig 7(a) column for HAR).
    let (harvester, capacitor) = paper_supply();
    let cmp = compare(deployment.quantized(), &harvester, &capacitor, false)?;
    println!("{cmp}");
    let speedup = |name: &str| cmp.speedup_over(name).unwrap_or(f64::NAN);
    println!(
        "ACE+FLEX speedups: {:.1}x vs BASE, {:.1}x vs SONIC, {:.1}x vs TAILS\n",
        speedup("BASE"),
        speedup("SONIC"),
        speedup("TAILS"),
    );

    // Harvester sweep: the same FLEX inference under increasingly harsh
    // power. Wall time stretches (more charging), active time and
    // checkpoint overhead stay nearly flat — the FLEX property. One
    // session serves the whole sweep: the board and the lowered FLEX
    // program are built exactly once.
    println!(
        "{:<28} {:>9} {:>12} {:>12} {:>10}",
        "harvester", "outages", "active ms", "wall ms", "ckpt %"
    );
    let profiles: Vec<(String, Harvester)> = vec![
        (
            "square 2 mW 50%".into(),
            Harvester::square(0.002, 0.05, 0.5),
        ),
        (
            "square 1.5 mW 40%".into(),
            Harvester::square(0.0015, 0.05, 0.4),
        ),
        ("sine 3 mW peak".into(), Harvester::sine(0.003, 0.08)),
        (
            "bursts 4 mW p=0.35".into(),
            Harvester::bursts(0.004, 0.01, 0.35, 9),
        ),
    ];
    let mut session = deployment.session();
    for (label, h) in profiles {
        let report = session.infer_intermittent(&PowerSupply::new(h, capacitor.clone()));
        println!(
            "{:<28} {:>9} {:>12.2} {:>12.2} {:>10.2}",
            label,
            report.outages,
            report.active_seconds * 1e3,
            report.wall_seconds * 1e3,
            100.0 * report.checkpoint_overhead()
        );
        assert!(report.completed(), "FLEX must survive {label}");
    }
    Ok(())
}
