//! Fleet sweep: run one workload across the whole environment catalog
//! and every checkpoint strategy, in parallel, and print the
//! deterministic fleet report.
//!
//! ```text
//! cargo run --release --example fleet_sweep
//! ```

use ehdl::ehsim::{catalog, ExecutorConfig};
use ehdl::prelude::*;
use ehdl_fleet::{FleetRunner, ScenarioMatrix, Workload};

fn main() -> Result<(), ehdl::Error> {
    let matrix = ScenarioMatrix::new()
        .environments(catalog::all())
        .strategies(Strategy::ALL.to_vec())
        .workloads(vec![Workload::Har { samples: 8 }])
        .runs(2)
        .executor(ExecutorConfig {
            // Declare the ✗ for checkpoint-free strategies after a few
            // fruitless reboots instead of the full stall budget.
            stall_outages: 6,
            ..ExecutorConfig::default()
        });

    let workers = std::thread::available_parallelism()
        .map_or(4, usize::from)
        .max(4);
    println!(
        "sweeping {} scenarios × {} runs on {} workers...",
        matrix.len(),
        2,
        workers
    );

    let started = std::time::Instant::now();
    let report = FleetRunner::new(workers).run(&matrix)?;
    println!("{report}");
    println!(
        "swept {} scenarios in {:.2} s ({} reboots simulated)",
        report.len(),
        started.elapsed().as_secs_f64(),
        report.total_outages()
    );

    // The report is a pure function of the matrix: a single-worker
    // re-run folds to the identical result.
    let serial = FleetRunner::new(1).run(&matrix)?;
    assert_eq!(
        serial, report,
        "fleet reports must be worker-count independent"
    );
    println!("verified: 1-worker re-run folds to the identical report");
    Ok(())
}
