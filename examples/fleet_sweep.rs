//! Fleet sweep: run one workload across the whole environment catalog
//! and every checkpoint strategy, in parallel, print the deterministic
//! dense fleet report, then re-run the sweep through the streaming
//! telemetry sinks (fixed-size digest + per-strategy grouping).
//!
//! ```text
//! cargo run --release --example fleet_sweep
//! ```

use ehdl::ehsim::{catalog, ExecutorConfig};
use ehdl::prelude::*;
use ehdl_fleet::{DigestSink, FleetRunner, GroupAxis, GroupBySink, ScenarioMatrix, Workload};

fn main() -> Result<(), ehdl::Error> {
    let matrix = ScenarioMatrix::new()
        .environments(catalog::all())
        .strategies(Strategy::ALL.to_vec())
        .workloads(vec![Workload::Har { samples: 8 }])
        .runs(2)
        .executor(ExecutorConfig {
            // Declare the ✗ for checkpoint-free strategies after a few
            // fruitless reboots instead of the full stall budget.
            stall_outages: 6,
            ..ExecutorConfig::default()
        });

    let workers = std::thread::available_parallelism()
        .map_or(4, usize::from)
        .max(4);
    println!(
        "sweeping {} scenarios × {} runs on {} workers...",
        matrix.len(),
        2,
        workers
    );

    let started = std::time::Instant::now();
    let report = FleetRunner::new(workers).run(&matrix)?;
    println!("{report}");
    println!(
        "swept {} scenarios in {:.2} s ({} reboots simulated)",
        report.len(),
        started.elapsed().as_secs_f64(),
        report.total_outages()
    );

    // The report is a pure function of the matrix: a single-worker
    // re-run folds to the identical result.
    let serial = FleetRunner::new(1).run(&matrix)?;
    assert_eq!(
        serial, report,
        "fleet reports must be worker-count independent"
    );
    println!("verified: 1-worker re-run folds to the identical report");

    // The same sweep as streaming telemetry: a fixed-size digest (the
    // 10k-scenario story — nothing retained per run) plus a
    // per-strategy group-by, both bit-identical at any worker count.
    let (digest, by_strategy) = FleetRunner::builder()
        .workers(workers)
        .sink((DigestSink::new(), GroupBySink::new(GroupAxis::Strategy)))
        .run(&matrix)?;
    println!("\n{digest}");
    println!("{by_strategy}");
    println!(
        "digest retains {} bytes — constant however many scenarios run",
        digest.memory_bytes()
    );
    assert_eq!(digest.runs, report.total_runs());
    assert_eq!(digest.completed_runs, report.completed_runs());
    Ok(())
}
