//! MNIST under intermittent power: the paper's headline scenario.
//!
//! Trains the Table II MNIST topology briefly on the synthetic digit
//! set, deploys it through RAD, then compares all five execution
//! strategies — BASE, SONIC, TAILS, bare ACE and ACE+FLEX — under both
//! continuous and harvested power (the Figure 7 panels for one model).
//!
//! ```text
//! cargo run --release -p ehdl --example mnist_intermittent
//! ```

use ehdl::flex::compare::{compare, paper_supply};
use ehdl::prelude::*;
use ehdl::train::{TrainConfig, Trainer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut model = ehdl::nn::zoo::mnist();
    let data = ehdl::datasets::mnist(120, 42);
    let (train_set, test_set) = data.split(0.8);

    // RAD's offline training on the synthetic digits (a short schedule —
    // the synthetic classes are easy to separate).
    let pairs: Vec<(Tensor, usize)> = train_set
        .samples()
        .iter()
        .map(|s| (s.input.clone(), s.label))
        .collect();
    let report = Trainer::new(TrainConfig {
        epochs: 6,
        lr: 0.001,
        momentum: 0.9,
    })
    .train_pairs(&mut model, &pairs)?;
    println!(
        "trained: loss {:.3} -> {:.3}, train accuracy {:.1}%",
        report.loss_history.first().unwrap_or(&0.0),
        report.loss_history.last().unwrap_or(&0.0),
        100.0 * report.final_accuracy
    );

    // Deploy: calibration + quantization + ACE compilation, via the
    // builder (paper defaults: 32 samples at the 0.9 percentile, the
    // FR5994 board, FLEX checkpointing).
    let deployment = Deployment::builder(&mut model, &train_set).build()?;
    let session = deployment.session();
    let test_acc = session.accuracy(&test_set)?;
    println!("quantized test accuracy: {:.1}%", 100.0 * test_acc);

    // The full five-strategy comparison under the paper's supply.
    let (harvester, capacitor) = paper_supply();
    let cmp = compare(deployment.quantized(), &harvester, &capacitor, true)?;
    println!("\n{cmp}");
    let speedup = |name: &str| cmp.speedup_over(name).unwrap_or(f64::NAN);
    let saving = |name: &str| cmp.energy_saving_over(name).unwrap_or(f64::NAN);
    println!(
        "Fig 7(a) speedups of ACE+FLEX:  {:.1}x vs BASE, {:.1}x vs SONIC, {:.1}x vs TAILS",
        speedup("BASE"),
        speedup("SONIC"),
        speedup("TAILS"),
    );
    println!(
        "Fig 7(c) energy savings:        {:.1}x vs SONIC, {:.1}x vs TAILS",
        saving("SONIC"),
        saving("TAILS"),
    );
    if let Some(rep) = cmp.get("ACE+FLEX").and_then(|r| r.intermittent.as_ref()) {
        println!(
            "Fig 7(b): ACE+FLEX finished with {} outages, {} on-demand checkpoints, \
             {:.2}% checkpoint overhead",
            rep.outages,
            rep.ondemand_checkpoints,
            100.0 * rep.checkpoint_overhead()
        );
    }
    Ok(())
}
