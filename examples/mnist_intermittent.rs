//! MNIST under intermittent power: the paper's headline scenario.
//!
//! Trains the Table II MNIST topology briefly on the synthetic digit
//! set, deploys it through RAD, then compares all five execution
//! strategies — BASE, SONIC, TAILS, bare ACE and ACE+FLEX — under both
//! continuous and harvested power (the Figure 7 panels for one model).
//!
//! ```text
//! cargo run --release -p ehdl --example mnist_intermittent
//! ```

use ehdl::flex::compare::{compare, paper_supply};
use ehdl::prelude::*;
use ehdl::train::{TrainConfig, Trainer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut model = ehdl::nn::zoo::mnist();
    let data = ehdl::datasets::mnist(120, 42);
    let (train_set, test_set) = data.split(0.8);

    // RAD's offline training on the synthetic digits (a short schedule —
    // the synthetic classes are easy to separate).
    let pairs: Vec<(Tensor, usize)> = train_set
        .samples()
        .iter()
        .map(|s| (s.input.clone(), s.label))
        .collect();
    let report = Trainer::new(TrainConfig {
        epochs: 6,
        lr: 0.001,
        momentum: 0.9,
    })
    .train_pairs(&mut model, &pairs)?;
    println!(
        "trained: loss {:.3} -> {:.3}, train accuracy {:.1}%",
        report.loss_history.first().unwrap_or(&0.0),
        report.loss_history.last().unwrap_or(&0.0),
        100.0 * report.final_accuracy
    );

    // Deploy: normalization + quantization + ACE compilation.
    let deployed = ehdl::pipeline::deploy(&mut model, &train_set)?;
    let test_acc = ehdl::pipeline::quantized_accuracy(&deployed.quantized, &test_set)?;
    println!("quantized test accuracy: {:.1}%", 100.0 * test_acc);

    // The full five-strategy comparison under the paper's supply.
    let (harvester, capacitor) = paper_supply();
    let cmp = compare(&deployed.quantized, &harvester, &capacitor, true)?;
    println!("\n{cmp}");
    println!(
        "Fig 7(a) speedups of ACE+FLEX:  {:.1}x vs BASE, {:.1}x vs SONIC, {:.1}x vs TAILS",
        cmp.speedup_over("BASE"),
        cmp.speedup_over("SONIC"),
        cmp.speedup_over("TAILS"),
    );
    println!(
        "Fig 7(c) energy savings:        {:.1}x vs SONIC, {:.1}x vs TAILS",
        cmp.energy_saving_over("SONIC"),
        cmp.energy_saving_over("TAILS"),
    );
    if let Some(rep) = &cmp.get("ACE+FLEX").intermittent {
        println!(
            "Fig 7(b): ACE+FLEX finished with {} outages, {} on-demand checkpoints, \
             {:.2}% checkpoint overhead",
            rep.outages,
            rep.ondemand_checkpoints,
            100.0 * rep.checkpoint_overhead()
        );
    }
    Ok(())
}
