//! Sharded sweep: split a scenario matrix into subprocess shards,
//! stream-merge the per-scenario digest partials in matrix order, and
//! persist the merge frontier so a killed sweep resumes where it left
//! off.
//!
//! The example is its own worker: the coordinator relaunches this very
//! binary with `--shard-worker`, which routes into
//! [`ehdl_fleet::shard::worker_main`]. Any binary can do this — no
//! separate worker executable needed.
//!
//! ```text
//! cargo run --release --example shard_sweep
//! ```
//!
//! Kill it mid-run (Ctrl-C) and run it again: the second run reloads
//! the frontier from the checkpoint directory, reuses every shard that
//! already merged, and lands on the same bit-identical digest.

use ehdl::ehsim::{catalog, ExecutorConfig};
use ehdl::prelude::*;
use ehdl_fleet::{GroupAxis, ScenarioMatrix, ShardCoordinator, Workload};
use std::time::Instant;

fn main() -> Result<(), ehdl::Error> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().is_some_and(|a| a == "--shard-worker") {
        return ehdl_fleet::shard::worker_main(&args[1..]);
    }

    let matrix = ScenarioMatrix::new()
        .environments(catalog::all())
        .strategies(Strategy::ALL.to_vec())
        .workloads(vec![Workload::Har { samples: 8 }])
        .seeds((0..4).collect())
        .energy_budgets_nj(vec![None, Some(1_000_000.0)])
        .executor(ExecutorConfig {
            stall_outages: 6,
            ..ExecutorConfig::default()
        });
    let ckpt = std::env::temp_dir().join("ehdl-shard-sweep-example");
    println!(
        "{} scenarios in shards of 24, checkpointing to {}\n",
        matrix.len(),
        ckpt.display()
    );

    let started = Instant::now();
    let report = ShardCoordinator::new(24)
        .concurrency(2)
        .worker_threads(2)
        .checkpoint_dir(&ckpt)
        .group_by(vec![GroupAxis::Strategy, GroupAxis::EnergyBudget])
        .worker_command(std::env::current_exe()?, vec!["--shard-worker".into()])
        .run(&matrix)?;
    println!(
        "swept in {:.2} s ({} of {} shards reused from the checkpoint)\n",
        started.elapsed().as_secs_f64(),
        report.resumed_shards,
        report.shards
    );
    println!("{report}");

    if report.is_complete() {
        // The sweep is done; drop the checkpoint so the next run starts
        // fresh. Leave it in place to see the frontier memoize instead.
        let _ = std::fs::remove_dir_all(&ckpt);
    }
    Ok(())
}
