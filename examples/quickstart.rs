//! Quickstart: deploy a Table II model and run it on the simulated
//! energy-harvesting board.
//!
//! ```text
//! cargo run --release -p ehdl --example quickstart
//! ```

use ehdl::prelude::*;
use ehdl::train::{TrainConfig, Trainer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A paper model (HAR: human activity recognition, Table II) and
    //    its synthetic dataset substitute.
    let mut model = ehdl::nn::zoo::har();
    let data = ehdl::datasets::har(60, 7);
    println!("model:\n{model}");

    // 1b. RAD trains offline; a short schedule separates the synthetic
    //     classes.
    let pairs: Vec<(Tensor, usize)> = data
        .samples()
        .iter()
        .map(|s| (s.input.clone(), s.label))
        .collect();
    let trained = Trainer::new(TrainConfig {
        epochs: 5,
        lr: 0.001,
        momentum: 0.9,
    })
    .train_pairs(&mut model, &pairs)?;
    println!(
        "trained to {:.1}% on synthetic HAR",
        100.0 * trained.final_accuracy
    );

    // 2. RAD's deployment pass: every scenario axis is a builder
    //    parameter — calibration recipe, target board, checkpoint
    //    strategy.
    let deployment = Deployment::builder(&mut model, &data)
        .calibration(CalibrationConfig {
            samples: 32,
            percentile: 0.9,
        })
        .board(BoardSpec::Msp430Fr5994)
        .strategy(Strategy::Flex)
        .build()?;
    println!(
        "deployed: {} bytes of FRAM, {} device ops ({} LEA, {} DMA)",
        deployment.quantized().fram_bytes(),
        deployment.program().len(),
        deployment.program().lea_invocations(),
        deployment.program().dma_transfers(),
    );

    // 3. ACE: open a session (board + lowered program, built once) and
    //    run one inference under continuous (bench) power.
    let mut session = deployment.session();
    let sample = &data.samples()[0];
    let outcome = session.infer(&sample.input)?;
    println!(
        "continuous: predicted class {} (label {}) — {}",
        outcome.prediction, sample.label, outcome
    );

    // 4. FLEX: the same inference powered by the bench supply — a square
    //    wave into a small storage capacitor.
    let (harvester, capacitor) = ehdl::flex::compare::paper_supply();
    let report = session.infer_intermittent(&PowerSupply::new(harvester, capacitor));
    println!(
        "intermittent: {} — {} outages, {:.2} ms active, {:.2} ms charging, \
         checkpoint overhead {:.2}%",
        if report.completed() {
            "completed"
        } else {
            "FAILED"
        },
        report.outages,
        report.active_seconds * 1e3,
        report.charging_seconds * 1e3,
        100.0 * report.checkpoint_overhead(),
    );

    // 5. Accuracy of the deployed (compressed + quantized) model.
    let acc = session.accuracy(&data)?;
    println!("quantized accuracy on synthetic HAR: {:.1}%", 100.0 * acc);

    // Keep the prelude imports exercised.
    let _board = Board::msp430fr5994();
    let _q: Q15 = Q15::from_f32(0.5);
    Ok(())
}
