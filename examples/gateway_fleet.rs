//! Gateway fleet: a line of devices harvesting one shared RF field,
//! polled round-robin by a duty-cycled gateway. Sweeps fleet sizes,
//! prints the end-to-end SLO picture per topology (served fraction,
//! staleness percentiles, starvation), and shows the solo-parity
//! guarantee: a single-device topology folds the exact same physics as
//! the plain executor, plus a gateway view on top.
//!
//! ```text
//! cargo run --release --example gateway_fleet
//! ```

use ehdl::ehsim::{catalog, ExecutorConfig};
use ehdl::prelude::*;
use ehdl_fleet::{
    DigestSink, FleetRunner, GroupAxis, GroupBySink, NetworkTopology, ScenarioMatrix, Workload,
};

fn main() -> Result<(), ehdl::Error> {
    // Three fleets on the same RF source: spacing fixed, so growing the
    // fleet stretches the line and the quadratic path loss starves the
    // far end unless the field budget grows with it.
    let topologies: Vec<NetworkTopology> = [4u32, 16, 64]
        .into_iter()
        .map(|devices| NetworkTopology {
            devices,
            spacing: 0.25,
            field_budget: f64::from(devices) * 0.75,
            poll_period_s: 0.5,
            poll_offset_s: 0.0,
            freshness_s: 10.0,
            poll_retries: 0,
        })
        .collect();
    let matrix = ScenarioMatrix::new()
        .environments(vec![catalog::office_rf()])
        .strategies(vec![Strategy::Sonic])
        .workloads(vec![Workload::Har { samples: 4 }])
        .topologies(topologies)
        .runs(2)
        .executor(ExecutorConfig {
            stall_outages: 6,
            ..ExecutorConfig::default()
        });

    println!("sweeping {} networked scenarios...", matrix.len());
    let by_topology =
        FleetRunner::new(4).run_with_sink(&matrix, GroupBySink::new(GroupAxis::Topology))?;
    for (label, digest) in &by_topology.groups {
        let s = &digest.slo;
        println!(
            "{label:<24} {:>5}/{:<5} polls served ({:>5.1}%)  staleness p50 {:>6.3} s  \
             p99 {:>6.3} s  starved {}/{}",
            s.served,
            s.polls,
            s.served_fraction() * 100.0,
            s.staleness_s.p50().unwrap_or(0.0),
            s.staleness_s.p99().unwrap_or(0.0),
            s.starved_devices,
            s.devices,
        );
    }

    // Solo parity: a 1-device topology routes through the full world
    // simulator — shared field, timeline recording, gateway — yet its
    // physical records are bit-identical to the plain solo executor.
    let base = ScenarioMatrix::new()
        .environments(vec![catalog::office_rf()])
        .strategies(vec![Strategy::Sonic])
        .workloads(vec![Workload::Har { samples: 4 }])
        .runs(2)
        .executor(ExecutorConfig {
            stall_outages: 6,
            ..ExecutorConfig::default()
        });
    let one_device = NetworkTopology {
        devices: 1,
        spacing: 0.0,
        field_budget: 1.0,
        poll_period_s: 0.5,
        poll_offset_s: 0.0,
        freshness_s: 10.0,
        poll_retries: 0,
    };
    let solo = FleetRunner::new(2).run_with_sink(&base.clone(), DigestSink::new())?;
    let world =
        FleetRunner::new(2).run_with_sink(&base.topologies(vec![one_device]), DigestSink::new())?;
    let mut world_sans_slo = world.clone();
    world_sans_slo.slo = solo.slo.clone();
    assert_eq!(world_sans_slo, solo, "solo parity broken");
    println!(
        "\nsolo parity verified: 1-device world reproduces the solo executor bit for bit \
         ({}/{} gateway polls served on top)",
        world.slo.served, world.slo.polls
    );
    Ok(())
}
