//! Strategy parity: every checkpoint strategy runs the *same logical
//! inference*. Checkpointing disciplines may change cycles and energy,
//! but never values — the paper's baselines are apples-to-apples
//! because their outputs are bit-identical.

use ehdl::prelude::*;

fn har_data() -> Dataset {
    ehdl::datasets::har(24, 17)
}

fn deployment_with(strategy: Strategy, data: &Dataset) -> Deployment {
    let mut model = ehdl::nn::zoo::har();
    Deployment::builder(&mut model, data)
        .strategy(strategy)
        .build()
        .unwrap()
}

#[test]
fn all_strategies_produce_identical_logits() {
    let data = har_data();
    let inputs: Vec<Tensor> = data
        .samples()
        .iter()
        .take(6)
        .map(|s| s.input.clone())
        .collect();

    let reference = {
        let deployment = deployment_with(Strategy::Flex, &data);
        let mut session = deployment.session();
        session.infer_batch(&inputs).unwrap()
    };
    for strategy in Strategy::ALL {
        let deployment = deployment_with(strategy, &data);
        assert_eq!(deployment.strategy(), strategy);
        let mut session = deployment.session();
        for (i, input) in inputs.iter().enumerate() {
            let outcome = session.infer(input).unwrap();
            assert_eq!(
                outcome.logits, reference[i].logits,
                "{strategy}: logits diverged on sample {i}"
            );
            assert_eq!(outcome.prediction, reference[i].prediction, "{strategy}");
            // Normalized model: no strategy may saturate.
            assert_eq!(outcome.overflow.saturations(), 0, "{strategy}");
        }
    }
}

#[test]
fn strategies_differ_in_cost_not_values() {
    // The flip side of parity: the strategies are *not* the same
    // program. SONIC pays checkpoint traffic BASE doesn't; FLEX ties
    // bare ACE under continuous power.
    let data = har_data();
    let cost_of = |strategy: Strategy| deployment_with(strategy, &data).session().continuous_cost();
    let base = cost_of(Strategy::Base);
    let sonic = cost_of(Strategy::Sonic);
    let flex = cost_of(Strategy::Flex);
    let bare = cost_of(Strategy::Bare);
    assert!(sonic.cycles > base.cycles, "SONIC adds checkpoint traffic");
    assert_eq!(
        flex.cycles, bare.cycles,
        "on-demand FLEX is free when power holds"
    );
    assert!(base.cycles > flex.cycles, "acceleration wins");
}

#[test]
fn intermittent_survivors_preserve_values_too() {
    // Run the three surviving strategies under harvested power; the
    // completed runs must not corrupt state (checked end-to-end at the
    // data level by flex::machine; here we assert the API-level
    // contract that survival matches the strategy's declared class).
    let data = har_data();
    let (h, c) = ehdl::flex::compare::paper_supply();
    let supply = PowerSupply::new(h, c);
    for strategy in Strategy::ALL {
        let deployment = deployment_with(strategy, &data);
        let mut session = deployment.session();
        let report = session.infer_intermittent(&supply);
        assert_eq!(
            report.completed(),
            strategy.survives_intermittence(),
            "{strategy}: {report}"
        );
    }
}

#[test]
fn infer_batch_matches_per_sample_infer() {
    let data = har_data();
    let deployment = deployment_with(Strategy::Flex, &data);
    let inputs: Vec<Tensor> = data.samples().iter().map(|s| s.input.clone()).collect();

    let batched = deployment.session().infer_batch(&inputs).unwrap();
    assert_eq!(batched.len(), inputs.len());

    let mut session = deployment.session();
    for (i, input) in inputs.iter().enumerate() {
        let single = session.infer(input).unwrap();
        assert_eq!(single.logits, batched[i].logits, "sample {i}");
        assert_eq!(single.prediction, batched[i].prediction, "sample {i}");
        assert_eq!(single.cost, batched[i].cost, "sample {i}");
    }
}

#[test]
fn batch_accuracy_matches_session_accuracy() {
    let data = har_data();
    let deployment = deployment_with(Strategy::Flex, &data);
    let mut session = deployment.session();
    let inputs: Vec<Tensor> = data.samples().iter().map(|s| s.input.clone()).collect();
    let outcomes = session.infer_batch(&inputs).unwrap();
    let correct = outcomes
        .iter()
        .zip(data.samples())
        .filter(|(o, s)| o.prediction == s.label)
        .count();
    let batch_acc = correct as f64 / data.len() as f64;
    assert_eq!(batch_acc, session.accuracy(&data).unwrap());
}
