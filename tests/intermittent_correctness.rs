//! Intermittent-power behaviour on the real workloads: who completes,
//! who starves, and what checkpointing costs (Figure 7(b) + §IV-A.5).
//!
//! These run whole inferences through the capacitor model, so they use
//! the FC-heavy HAR workload (smallest op stream) for the per-strategy
//! sweeps and are still the slowest tests in the suite.

use ehdl::prelude::*;

fn har_deployment(strategy: Strategy) -> Deployment {
    let mut model = ehdl::nn::zoo::har();
    let data = ehdl::datasets::har(32, 11);
    Deployment::builder(&mut model, &data)
        .strategy(strategy)
        .build()
        .unwrap()
}

fn bench_supply() -> PowerSupply {
    let (h, c) = ehdl::flex::compare::paper_supply();
    PowerSupply::new(h, c)
}

fn run(strategy: Strategy) -> RunReport {
    har_deployment(strategy)
        .session()
        .infer_intermittent(&bench_supply())
}

#[test]
fn base_starves_under_harvested_power() {
    let report = run(Strategy::Base);
    assert!(!report.completed(), "{report}");
    assert!(report.wasted_ops > 0);
}

#[test]
fn bare_ace_starves_under_harvested_power() {
    // The second ✗ of Fig 7(b): acceleration alone does not survive.
    let report = run(Strategy::Bare);
    assert!(!report.completed(), "{report}");
}

#[test]
fn sonic_tails_flex_all_complete() {
    let mut actives = Vec::new();
    for strategy in [Strategy::Sonic, Strategy::Tails, Strategy::Flex] {
        assert!(strategy.survives_intermittence());
        let report = run(strategy);
        assert!(report.completed(), "{strategy}: {report}");
        assert!(report.outages > 0, "{strategy} should see outages");
        actives.push((strategy, report.active_seconds));
    }
    // ACE+FLEX has the lowest active (compute) time — Fig 7(b).
    let flex = actives
        .iter()
        .find(|(s, _)| *s == Strategy::Flex)
        .unwrap()
        .1;
    for (strategy, active) in &actives {
        if *strategy != Strategy::Flex {
            assert!(flex < *active, "{strategy} {active} vs flex {flex}");
        }
    }
}

#[test]
fn flex_intermittent_latency_within_percent_of_continuous() {
    // §IV-A: "there is a negligible increase (1%-2%) in latency and
    // energy consumption, achieving almost similar latency and energy
    // as continuous power" — comparing *active* time.
    let deployment = har_deployment(Strategy::Flex);
    let mut session = deployment.session();
    let continuous = session.continuous_cost();
    let report = session.infer_intermittent(&bench_supply());
    assert!(report.completed());

    let cont_s = continuous.cycles.as_seconds(16e6);
    let ratio = report.active_seconds / cont_s;
    assert!(
        (1.0..1.25).contains(&ratio),
        "active-time inflation {ratio} (continuous {cont_s}s, intermittent {}s)",
        report.active_seconds
    );
}

#[test]
fn flex_checkpoint_overhead_is_percent_scale() {
    // §IV-A.5: total checkpoint/restore overhead ≈ 1%/1.25%/0.8%.
    let report = run(Strategy::Flex);
    assert!(report.completed());
    let overhead = report.checkpoint_overhead();
    assert!(overhead < 0.10, "checkpoint overhead {overhead}");
    assert!(report.ondemand_checkpoints > 0);
}

#[test]
fn flex_single_checkpoint_cost_below_margin() {
    // The voltage-monitor margin (warn 2.0 V → off 1.8 V on 100 µF,
    // ≈ 38 µJ) must cover the largest single checkpoint — the paper's
    // 0.033 mJ bound plays the same role.
    let deployment = har_deployment(Strategy::Flex);
    let ace = deployment.program();
    let max_live = ace.ops().iter().map(|t| t.live_words).max().unwrap() as u64;
    let board = Board::msp430fr5994();
    let cost = board.cost(&ehdl::device::DeviceOp::Checkpoint {
        words: max_live + 4,
    });
    let (_, cap) = ehdl::flex::compare::paper_supply();
    let margin_j = board.monitor().margin_energy_joules(cap.farads());
    assert!(
        cost.energy.nanojoules() * 1e-9 < margin_j,
        "checkpoint {} vs margin {margin_j} J",
        cost.energy
    );
}

#[test]
fn stronger_harvester_means_fewer_outages() {
    let deployment = har_deployment(Strategy::Flex);
    let mut session = deployment.session();
    let mut outages_at = |watts: f64| -> u64 {
        session
            .infer_intermittent(&PowerSupply::new(
                Harvester::square(watts, 0.05, 0.5),
                Capacitor::paper_100uf(),
            ))
            .outages
    };
    assert!(outages_at(0.002) >= outages_at(0.008));
}
