//! End-to-end pipeline tests: RAD → ACE → FLEX on all three Table II
//! workloads.

use ehdl::prelude::*;

fn deploy_model(
    model: fn() -> Model,
    data: &Dataset,
) -> ehdl::pipeline::DeployedModel {
    let mut m = model();
    ehdl::pipeline::deploy(&mut m, data).expect("deployment succeeds")
}

#[test]
fn mnist_pipeline_end_to_end() {
    let data = ehdl::datasets::mnist(40, 1);
    let deployed = deploy_model(ehdl::nn::zoo::mnist, &data);
    let outcome =
        ehdl::pipeline::infer_continuous(&deployed, &data.samples()[0].input).unwrap();
    assert_eq!(outcome.logits.len(), 10);
    assert_eq!(outcome.overflow.saturations(), 0);
    assert!(outcome.cost.cycles.raw() > 100_000);
}

#[test]
fn har_pipeline_end_to_end() {
    let data = ehdl::datasets::har(40, 2);
    let deployed = deploy_model(ehdl::nn::zoo::har, &data);
    let outcome =
        ehdl::pipeline::infer_continuous(&deployed, &data.samples()[0].input).unwrap();
    assert_eq!(outcome.logits.len(), 6);
    assert_eq!(outcome.overflow.saturations(), 0);
}

#[test]
fn okg_pipeline_end_to_end() {
    let data = ehdl::datasets::okg(30, 3);
    let deployed = deploy_model(ehdl::nn::zoo::okg, &data);
    let outcome =
        ehdl::pipeline::infer_continuous(&deployed, &data.samples()[0].input).unwrap();
    assert_eq!(outcome.logits.len(), 12);
    assert_eq!(outcome.overflow.saturations(), 0);
}

#[test]
fn quantized_model_is_deterministic() {
    let data = ehdl::datasets::har(20, 4);
    let a = deploy_model(ehdl::nn::zoo::har, &data);
    let b = deploy_model(ehdl::nn::zoo::har, &data);
    let x = &data.samples()[5].input;
    let oa = ehdl::pipeline::infer_continuous(&a, x).unwrap();
    let ob = ehdl::pipeline::infer_continuous(&b, x).unwrap();
    assert_eq!(oa.logits, ob.logits);
    assert_eq!(oa.cost, ob.cost);
}

#[test]
fn trained_model_survives_deployment_with_accuracy() {
    // Train HAR briefly; deployment (normalize + quantize) must keep
    // most of the accuracy — Table II's claim that compression costs
    // only a small drop.
    let mut model = ehdl::nn::zoo::har();
    let data = ehdl::datasets::har(120, 5);
    let (train_set, test_set) = data.split(0.75);
    let pairs: Vec<(Tensor, usize)> = train_set
        .samples()
        .iter()
        .map(|s| (s.input.clone(), s.label))
        .collect();
    let report = ehdl::train::Trainer::new(ehdl::train::TrainConfig {
        epochs: 10,
        lr: 0.001,
        momentum: 0.9,
    })
    .train_pairs(&mut model, &pairs)
    .unwrap();
    assert!(report.final_accuracy > 0.8, "train acc {}", report.final_accuracy);

    let float_acc = ehdl::pipeline::float_accuracy(&model, &test_set).unwrap();
    let deployed = ehdl::pipeline::deploy(&mut model, &train_set).unwrap();
    let q_acc = ehdl::pipeline::quantized_accuracy(&deployed.quantized, &test_set).unwrap();
    assert!(
        q_acc >= float_acc - 0.15,
        "quantization dropped accuracy {float_acc} -> {q_acc}"
    );
}

#[test]
fn deployment_fits_fr5994_budgets() {
    for (q, scratch) in [
        ehdl::nn::zoo::mnist(),
        ehdl::nn::zoo::har(),
        ehdl::nn::zoo::okg(),
    ]
    .into_iter()
    .map(|m| {
        let q = ehdl::ace::QuantizedModel::from_model(&m).unwrap();
        let plan = ehdl::ace::CircularBufferPlan::new(&q);
        (q, plan.circular_words() * 2)
    }) {
        let mut board = Board::msp430fr5994();
        board
            .fram_mut()
            .reserve_model(q.fram_bytes())
            .expect("model fits FRAM");
        board
            .fram_mut()
            .reserve_scratch(scratch)
            .expect("activation buffers fit FRAM");
    }
}

#[test]
fn normalized_models_never_saturate_on_dataset() {
    let data = ehdl::datasets::mnist(25, 6);
    let deployed = deploy_model(ehdl::nn::zoo::mnist, &data);
    let mut total = ehdl::fixed::OverflowStats::new();
    for s in data.samples() {
        let x = ehdl::pipeline::quantize_input(&s.input);
        let _ = ehdl::ace::reference::forward_with_stats(&deployed.quantized, &x, &mut total)
            .unwrap();
    }
    assert_eq!(total.saturations(), 0, "{total}");
}
