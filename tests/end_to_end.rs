//! End-to-end pipeline tests: RAD → ACE → FLEX on all three Table II
//! workloads, through the `Deployment` builder and `DeviceSession` API.

use ehdl::prelude::*;

fn deploy_model(model: fn() -> Model, data: &Dataset) -> Deployment {
    let mut m = model();
    Deployment::builder(&mut m, data)
        .build()
        .expect("deployment succeeds")
}

#[test]
fn mnist_pipeline_end_to_end() {
    let data = ehdl::datasets::mnist(40, 1);
    let deployment = deploy_model(ehdl::nn::zoo::mnist, &data);
    let outcome = deployment
        .session()
        .infer(&data.samples()[0].input)
        .unwrap();
    assert_eq!(outcome.logits.len(), 10);
    assert_eq!(outcome.overflow.saturations(), 0);
    assert!(outcome.cost.cycles.raw() > 100_000);
}

#[test]
fn har_pipeline_end_to_end() {
    let data = ehdl::datasets::har(40, 2);
    let deployment = deploy_model(ehdl::nn::zoo::har, &data);
    let outcome = deployment
        .session()
        .infer(&data.samples()[0].input)
        .unwrap();
    assert_eq!(outcome.logits.len(), 6);
    assert_eq!(outcome.overflow.saturations(), 0);
}

#[test]
fn okg_pipeline_end_to_end() {
    let data = ehdl::datasets::okg(30, 3);
    let deployment = deploy_model(ehdl::nn::zoo::okg, &data);
    let outcome = deployment
        .session()
        .infer(&data.samples()[0].input)
        .unwrap();
    assert_eq!(outcome.logits.len(), 12);
    assert_eq!(outcome.overflow.saturations(), 0);
}

#[test]
fn quantized_model_is_deterministic() {
    let data = ehdl::datasets::har(20, 4);
    let a = deploy_model(ehdl::nn::zoo::har, &data);
    let b = deploy_model(ehdl::nn::zoo::har, &data);
    let x = &data.samples()[5].input;
    let oa = a.session().infer(x).unwrap();
    let ob = b.session().infer(x).unwrap();
    assert_eq!(oa.logits, ob.logits);
    assert_eq!(oa.cost, ob.cost);
}

#[test]
fn quantized_tracks_float_predictions() {
    // A brief training pass gives predictions real margins; on a
    // random-weight model most samples are near-ties where a 1-LSB
    // quantization wiggle legitimately flips the argmax.
    let mut model = ehdl::nn::zoo::har();
    let data = ehdl::datasets::har(30, 12);
    let pairs: Vec<(Tensor, usize)> = data
        .samples()
        .iter()
        .map(|s| (s.input.clone(), s.label))
        .collect();
    ehdl::train::Trainer::new(ehdl::train::TrainConfig {
        epochs: 5,
        lr: 0.001,
        momentum: 0.9,
    })
    .train_pairs(&mut model, &pairs)
    .unwrap();
    let deployment = Deployment::builder(&mut model, &data).build().unwrap();
    let mut session = deployment.session();
    let mut agree = 0;
    for s in data.samples() {
        let float_pred = model.forward(&s.input).unwrap().argmax();
        let q_pred = session.infer(&s.input).unwrap().prediction;
        if float_pred == q_pred {
            agree += 1;
        }
    }
    // Quantization may flip a few near-ties but not the bulk.
    assert!(agree * 10 >= data.len() * 8, "{agree}/{}", data.len());
}

#[test]
fn trained_model_survives_deployment_with_accuracy() {
    // Train HAR briefly; deployment (normalize + quantize) must keep
    // most of the accuracy — Table II's claim that compression costs
    // only a small drop.
    let mut model = ehdl::nn::zoo::har();
    let data = ehdl::datasets::har(120, 5);
    let (train_set, test_set) = data.split(0.75);
    let pairs: Vec<(Tensor, usize)> = train_set
        .samples()
        .iter()
        .map(|s| (s.input.clone(), s.label))
        .collect();
    let report = ehdl::train::Trainer::new(ehdl::train::TrainConfig {
        epochs: 10,
        lr: 0.001,
        momentum: 0.9,
    })
    .train_pairs(&mut model, &pairs)
    .unwrap();
    assert!(
        report.final_accuracy > 0.8,
        "train acc {}",
        report.final_accuracy
    );

    let float_acc = ehdl::deployment::float_accuracy(&model, &test_set).unwrap();
    let deployment = Deployment::builder(&mut model, &train_set).build().unwrap();
    let q_acc = deployment.session().accuracy(&test_set).unwrap();
    assert!(
        q_acc >= float_acc - 0.15,
        "quantization dropped accuracy {float_acc} -> {q_acc}"
    );
}

#[test]
fn deployment_fits_fr5994_budgets() {
    for (q, scratch) in [
        ehdl::nn::zoo::mnist(),
        ehdl::nn::zoo::har(),
        ehdl::nn::zoo::okg(),
    ]
    .into_iter()
    .map(|m| {
        let q = ehdl::ace::QuantizedModel::from_model(&m).unwrap();
        let plan = ehdl::ace::CircularBufferPlan::new(&q);
        (q, plan.circular_words() * 2)
    }) {
        let mut board = Board::msp430fr5994();
        board
            .fram_mut()
            .reserve_model(q.fram_bytes())
            .expect("model fits FRAM");
        board
            .fram_mut()
            .reserve_scratch(scratch)
            .expect("activation buffers fit FRAM");
    }
}

#[test]
fn normalized_models_never_saturate_on_dataset() {
    let data = ehdl::datasets::mnist(25, 6);
    let deployment = deploy_model(ehdl::nn::zoo::mnist, &data);
    let mut session = deployment.session();
    let inputs: Vec<Tensor> = data.samples().iter().map(|s| s.input.clone()).collect();
    for outcome in session.infer_batch(&inputs).unwrap() {
        assert_eq!(outcome.overflow.saturations(), 0, "{}", outcome.overflow);
    }
}
