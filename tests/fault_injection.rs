//! Deterministic fault injection: the crash-consistency acceptance
//! suite. A disabled fault plan must leave every executor path
//! bit-identical to the unfaulted engine (the no-regression bar), a
//! seeded plan must replay bit-identically across executor paths and
//! worker counts, and no strategy may ever complete with silently
//! corrupted progress — every corrupt restore is detected and rolled
//! back to the last good checkpoint.

use ehdl::ehsim::{
    catalog, ExecutorConfig, FaultPlan, FaultSpec, Integrity, IntermittentExecutor, WearCurve,
};
use ehdl::prelude::*;
use ehdl_fleet::{
    DigestSink, FleetRunner, GroupAxis, GroupBySink, JsonlSink, ScenarioMatrix, Workload,
};
use std::sync::Arc;

fn quick_executor() -> ExecutorConfig {
    ExecutorConfig {
        stall_outages: 6,
        max_wall_seconds: 600.0,
        ..ExecutorConfig::default()
    }
}

/// An aggressive-but-survivable schedule: every fault kind fires.
fn storm(seed: u64) -> FaultSpec {
    FaultSpec {
        seed,
        reset_per_op: 2e-4,
        sag_per_op: 1e-3,
        sag_factor: 1.5,
        tear_per_commit: 0.1,
        corrupt_per_restore: 0.25,
        burst_len: 0,
        flip_per_commit_bit: 0.0,
        wear: WearCurve::NONE,
    }
}

/// A payload-upset storm: spurious resets force restores without
/// brown-outs, every successful commit draws a per-bit flip, and a
/// short wear-endurance curve accelerates the rate as slots age.
fn bit_storm(seed: u64) -> FaultSpec {
    FaultSpec {
        seed,
        reset_per_op: 0.01,
        flip_per_commit_bit: 2e-4,
        wear: WearCurve {
            endurance_commits: 20_000,
        },
        ..FaultSpec::none()
    }
}

fn har_deployment(strategy: Strategy) -> Deployment {
    let mut model = ehdl::nn::zoo::har();
    let data = ehdl::datasets::har(8, 3);
    Deployment::builder(&mut model, &data)
        .strategy(strategy)
        .build()
        .unwrap()
}

/// `FaultPlan::NONE` is the identity: for every (strategy, environment)
/// pair the faulted entry points reproduce the unfaulted runs bit for
/// bit — report, board meter and recorded trace. This is what keeps a
/// no-fault sweep byte-identical to the pre-fault-injection engine.
#[test]
fn disabled_fault_plan_is_bit_identical_to_the_unfaulted_engine() {
    let executor = IntermittentExecutor::new(quick_executor());
    for strategy in Strategy::ALL {
        let deployment = har_deployment(strategy);
        for environment in catalog::all() {
            let name = environment.name();

            let mut plain_session = deployment.session();
            let mut supply = environment.supply();
            let plain = plain_session.infer_intermittent_with(&executor, &mut supply);

            let mut faulted_session = deployment.session();
            let mut supply = environment.supply();
            let faulted = faulted_session.infer_intermittent_faulted(
                &executor,
                &mut supply,
                &FaultPlan::NONE,
            );
            assert_eq!(plain, faulted, "{strategy} in {name}");
            assert!(faulted.faults.is_clean(), "{strategy} in {name}");

            let mut traced_session = deployment.session();
            let mut supply = environment.supply();
            let (plain_report, plain_trace) =
                traced_session.infer_intermittent_traced(&executor, &mut supply);
            let mut traced_faulted = deployment.session();
            let mut supply = environment.supply();
            let (faulted_report, faulted_trace) = traced_faulted.infer_intermittent_faulted_traced(
                &executor,
                &mut supply,
                &FaultPlan::NONE,
            );
            assert_eq!(plain_report, faulted_report, "{strategy} in {name}");
            assert_eq!(plain_trace, faulted_trace, "{strategy} in {name}");
        }
    }
}

/// Plan-vs-reference parity under fire: the compiled fast path and the
/// op-by-op interpreter must agree bit for bit on a seeded fault
/// schedule — same injections, same recovery, same meter.
#[test]
fn faulted_plan_and_reference_paths_agree_across_strategies() {
    let executor = IntermittentExecutor::new(quick_executor());
    let fault = FaultPlan::compile(&storm(42));
    for strategy in Strategy::ALL {
        let deployment = har_deployment(strategy);
        for environment in catalog::all() {
            let name = environment.name();
            let mut planned_session = deployment.session();
            let mut supply = environment.supply();
            let planned =
                planned_session.infer_intermittent_faulted(&executor, &mut supply, &fault);
            let mut reference_session = deployment.session();
            let mut supply = environment.supply();
            let reference = reference_session.infer_intermittent_faulted_reference(
                &executor,
                &mut supply,
                &fault,
            );
            assert_eq!(planned, reference, "{strategy} in {name}");
        }
    }
}

/// The crash-consistency audit. Under a hostile schedule every strategy
/// must end in one of two honest states: recovered (completed with
/// exactly the work a fault-free run performs) or aborted with its
/// faults on the record. Corrupt restores are always detected — the
/// executor falls back to the last good slot — and a silently wrong
/// result (corrupted progress treated as valid) must be structurally
/// impossible.
#[test]
fn every_strategy_recovers_or_reports_detected_corruption() {
    let executor = IntermittentExecutor::new(quick_executor());
    let fault = FaultPlan::compile(&storm(7));
    let mut injected_total = 0;
    for strategy in Strategy::ALL {
        let deployment = har_deployment(strategy);
        for environment in catalog::all() {
            let name = environment.name();

            let mut clean_session = deployment.session();
            let mut supply = environment.supply();
            let clean = clean_session.infer_intermittent_with(&executor, &mut supply);

            let mut session = deployment.session();
            let mut supply = environment.supply();
            let report = session.infer_intermittent_faulted(&executor, &mut supply, &fault);
            let tally = &report.faults;
            injected_total += tally.injected();

            // Never a silent corruption: every corrupt restore is
            // detected the moment the slot is read back.
            assert_eq!(tally.silent_corruptions, 0, "{strategy} in {name}");
            assert_eq!(
                tally.detected_corruptions, tally.corrupt_restores,
                "{strategy} in {name}: undetected corrupt restore"
            );

            // Recovery means the full op stream ran: a completed
            // faulted run performs exactly the useful work a completed
            // fault-free run does. Re-done work lands in wasted_ops and
            // checkpoint writes (committed or torn) ride executed_ops
            // outside the op stream, so subtract both before comparing.
            let useful = |r: &ehdl::ehsim::RunReport| {
                r.executed_ops - r.wasted_ops - r.ondemand_checkpoints - r.faults.torn_commits
            };
            if report.completed() && clean.completed() {
                assert_eq!(
                    useful(&report),
                    useful(&clean),
                    "{strategy} in {name}: completed with missing work"
                );
            }
            // Checkpoint-free strategies starve under harvested power
            // with or without injected faults — the ✗ stays honest.
            if !strategy.survives_intermittence() && !clean.completed() {
                assert!(
                    !report.completed(),
                    "{strategy} in {name}: faults cannot make a doomed strategy complete"
                );
            }
        }
    }
    assert!(injected_total > 0, "the storm schedule never fired");
}

/// Fleet-level fault determinism: a seeded-fault sweep folds to a
/// bit-identical digest and byte-identical row stream at 1, 2 and 8
/// workers, its resilience tally is populated, and the no-fault axis
/// entry inside the same matrix stays clean.
#[test]
fn seeded_fault_sweeps_are_bit_identical_across_worker_counts() {
    let matrix = ScenarioMatrix::new()
        .environments(catalog::all())
        .strategies(vec![Strategy::Sonic, Strategy::Flex])
        .workloads(vec![Workload::Har { samples: 6 }])
        .faults(vec![FaultSpec::none(), storm(9)])
        .executor(quick_executor());
    assert_eq!(matrix.len(), 4 * 2 * 2);

    let one = FleetRunner::builder()
        .workers(1)
        .sink(DigestSink::new())
        .run(&matrix)
        .unwrap();
    for workers in [2, 8] {
        let many = FleetRunner::builder()
            .workers(workers)
            .sink(DigestSink::new())
            .run(&matrix)
            .unwrap();
        assert_eq!(one, many, "{workers} workers");
        assert_eq!(one.to_string(), many.to_string(), "{workers} workers");
    }
    // The storm half of the matrix actually faulted, nothing was
    // silently corrupted, and the report surfaces the tally.
    let r = &one.resilience;
    assert!(r.faulted_runs > 0);
    assert!(r.spurious_resets + r.torn_commits + r.sag_ops + r.corrupt_restores > 0);
    assert_eq!(r.silent_corruptions, 0);
    assert!((0.0..=1.0).contains(&r.recovery_rate()));
    assert!(one.to_string().contains("resilience:"), "{one}");

    // Row streams hold the same bar, and rows carry the fault label.
    let (jsonl_one, rows_one) = FleetRunner::builder()
        .workers(1)
        .sink(JsonlSink::new(Vec::new()))
        .run(&matrix)
        .unwrap();
    let (jsonl_eight, rows_eight) = FleetRunner::builder()
        .workers(8)
        .sink(JsonlSink::new(Vec::new()))
        .run(&matrix)
        .unwrap();
    assert_eq!(rows_one, rows_eight);
    assert_eq!(jsonl_one, jsonl_eight);
    let text = String::from_utf8(jsonl_one).unwrap();
    assert!(text.contains("\"fault\":\"none\""), "missing clean label");
    assert!(text.contains("\"fault\":\"f9:"), "missing storm label");
}

/// A no-fault matrix (the default axis) folds to the same digest as one
/// that never mentions faults — the fault axis defaults to a single
/// disabled spec, so existing sweeps cannot move a bit.
#[test]
fn default_fault_axis_leaves_sweeps_unchanged() {
    let base = ScenarioMatrix::new()
        .environments(vec![catalog::bench_supply(), catalog::office_rf()])
        .strategies(vec![Strategy::Flex])
        .workloads(vec![Workload::Har { samples: 6 }])
        .executor(quick_executor());
    let explicit = base.clone().faults(vec![FaultSpec::none()]);
    let implicit_digest = FleetRunner::builder()
        .workers(2)
        .sink(DigestSink::new())
        .run(&base)
        .unwrap();
    let explicit_digest = FleetRunner::builder()
        .workers(2)
        .sink(DigestSink::new())
        .run(&explicit)
        .unwrap();
    assert_eq!(implicit_digest, explicit_digest);
    assert_eq!(implicit_digest.resilience.faulted_runs, 0);
    assert!(!implicit_digest.to_string().contains("resilience:"));
}

/// Cache pressure cannot move results: squeezing the runner's
/// deployment and trace caches down to one entry forces evictions and
/// deterministic rebuilds, and the digest stays bit-identical to an
/// uncapped sweep at every worker count.
#[test]
fn lru_evictions_leave_the_digest_bit_identical() {
    let matrix = ScenarioMatrix::new()
        .environments(catalog::all())
        .strategies(vec![Strategy::Sonic, Strategy::Flex])
        .workloads(vec![Workload::Har { samples: 6 }])
        .executor(quick_executor());
    let uncapped = FleetRunner::builder()
        .workers(2)
        .sink(DigestSink::new())
        .run(&matrix)
        .unwrap();
    for workers in [1, 4] {
        let (capped, profile) = FleetRunner::builder()
            .workers(workers)
            .cache_entries(1)
            .sink(DigestSink::new())
            .run_profiled(&matrix)
            .unwrap();
        assert_eq!(uncapped, capped, "{workers} workers");
        assert!(
            profile.caches.deployment.evictions > 0,
            "{workers} workers: cap 1 never evicted ({:?})",
            profile.caches.deployment
        );
        assert_eq!(profile.caches.deployment.entries, 1, "{workers} workers");
    }
}

/// The payload-integrity audit. Under a bit-flip storm the `None`
/// scheme restores flipped payloads as if they were good: its own
/// in-band machinery detects nothing and repairs nothing, so the run
/// looks clean from the device's point of view. Only the golden-twin
/// diff catches it — the SECDED-guarded twin of the *same* deployment
/// under the *same* storm resolves its restores through repair and
/// fallback rungs, while the unguarded run accepts every one at rung
/// zero despite carrying injected flips. `Checksum` and `Secded`
/// make `silent_corruptions == 0` a property of the modeled detection
/// scheme, and both faulted paths (compiled plan and op-by-op
/// reference) agree bit for bit under every scheme.
#[test]
fn bit_flip_storm_is_silent_under_none_and_caught_only_by_the_golden_twin() {
    let executor = IntermittentExecutor::new(quick_executor());
    let fault = FaultPlan::compile(&bit_storm(29));
    let deployment = har_deployment(Strategy::Sonic);
    let environment = catalog::bench_supply();

    let mut reports = Vec::new();
    for scheme in Integrity::ALL {
        let plan = Arc::new(deployment.compile_plan_with_integrity(scheme));

        let mut planned_session = deployment.session_with_plan(Arc::clone(&plan));
        let mut supply = environment.supply();
        let planned = planned_session.infer_intermittent_faulted(&executor, &mut supply, &fault);

        let mut reference_session = deployment.session_with_plan(Arc::clone(&plan));
        let mut supply = environment.supply();
        let reference =
            reference_session.infer_intermittent_faulted_reference(&executor, &mut supply, &fault);

        // Bit-identical across executor paths, flips included.
        assert_eq!(planned, reference, "{scheme}");
        assert!(planned.integrity.flips_injected > 0, "{scheme}: no flips");
        assert!(planned.restores > 0, "{scheme}: storm forced no restores");
        assert_eq!(
            planned.integrity.restores_resolved(),
            planned.restores,
            "{scheme}: ladder must account for every restore"
        );
        assert!(
            planned.integrity.wear_max_commits > 0,
            "{scheme}: wear curve never tracked a commit"
        );
        reports.push(planned);
    }
    let [none, checksum, secded] = &reports[..] else {
        unreachable!()
    };

    // The unguarded run is in-band silent: nothing detected, nothing
    // repaired, every restore accepted at the first ladder rung…
    assert_eq!(none.integrity.flips_detected, 0);
    assert_eq!(none.integrity.flips_repaired, 0);
    assert_eq!(none.integrity.ladder[0], none.restores);
    // …yet the golden-twin bookkeeping proves corrupted payloads were
    // restored as if they were good.
    assert!(none.integrity.silent_restores > 0);
    assert_eq!(
        none.faults.silent_corruptions,
        none.integrity.silent_restores
    );
    // The SECDED twin of the same deployment under the same storm
    // resolves restores past rung zero — the diff that catches `None`.
    assert!(
        secded.integrity.ladder[1] + secded.integrity.ladder[2] + secded.integrity.ladder[3] > 0,
        "twin ladder never left rung zero"
    );

    // Guarded schemes keep silent corruption at zero by construction.
    assert_eq!(checksum.integrity.silent_restores, 0);
    assert_eq!(checksum.faults.silent_corruptions, 0);
    assert!(checksum.integrity.flips_detected > 0);
    assert_eq!(
        checksum.integrity.flips_repaired, 0,
        "checksum cannot repair"
    );
    assert_eq!(secded.integrity.silent_restores, 0);
    assert_eq!(secded.faults.silent_corruptions, 0);
    assert!(
        secded.integrity.flips_repaired > 0,
        "secded repairs singles"
    );
}

/// Fleet-level integrity determinism: a bit-flip storm swept across the
/// full integrity axis folds to a bit-identical digest at 1, 2 and 8
/// workers, and grouping by scheme shows silent corruption exactly
/// where the audit predicts it — in the `none` group and nowhere else.
#[test]
fn integrity_axis_sweeps_are_bit_identical_across_worker_counts() {
    let matrix = ScenarioMatrix::new()
        .environments(vec![catalog::bench_supply(), catalog::office_rf()])
        .strategies(vec![Strategy::Sonic])
        .workloads(vec![Workload::Har { samples: 4 }])
        .faults(vec![bit_storm(11)])
        .integrities(Integrity::ALL.to_vec())
        .executor(quick_executor());
    assert_eq!(matrix.len(), 2 * 3);

    let (one, by_scheme) = FleetRunner::builder()
        .workers(1)
        .sink((DigestSink::new(), GroupBySink::new(GroupAxis::Integrity)))
        .run(&matrix)
        .unwrap();
    for workers in [2, 8] {
        let (many, grouped) = FleetRunner::builder()
            .workers(workers)
            .sink((DigestSink::new(), GroupBySink::new(GroupAxis::Integrity)))
            .run(&matrix)
            .unwrap();
        assert_eq!(one, many, "{workers} workers");
        assert_eq!(by_scheme, grouped, "{workers} workers");
    }

    let none = by_scheme.get("none").unwrap();
    let checksum = by_scheme.get("checksum").unwrap();
    let secded = by_scheme.get("secded").unwrap();
    for (label, digest) in [("none", none), ("checksum", checksum), ("secded", secded)] {
        assert!(digest.integrity.flips_injected > 0, "{label}: no flips");
    }
    assert!(none.resilience.silent_corruptions > 0);
    assert!(none.integrity.silent_restores > 0);
    assert_eq!(checksum.resilience.silent_corruptions, 0);
    assert!(checksum.integrity.flips_detected > 0);
    assert_eq!(secded.resilience.silent_corruptions, 0);
    assert!(secded.integrity.flips_repaired > 0);
    // The merged digest surfaces the integrity line.
    assert!(one.to_string().contains("integrity:"), "{one}");
}
