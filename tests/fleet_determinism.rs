//! Fleet determinism: the same `ScenarioMatrix` must fold to an
//! identical report at any worker count — for the dense `FleetReport`
//! *and* for every streaming telemetry sink — the acceptance bar for
//! the sweep engine (4 environments × 6 strategies × 2 boards = 48
//! scenarios).

use ehdl::device::CostTable;
use ehdl::ehsim::{catalog, ExecutorConfig};
use ehdl::prelude::*;
use ehdl_fleet::{
    CsvSink, DigestSink, FleetRunner, FullReportSink, GroupAxis, GroupBySink, JsonlSink,
    ScenarioMatrix, StatsDigest, Workload,
};

/// The full acceptance matrix: every catalog environment, every
/// strategy, the paper board plus a 2× slower CPU ablation board.
fn acceptance_matrix() -> ScenarioMatrix {
    let mut slow_cpu = CostTable::msp430fr5994();
    slow_cpu.cpu_op_cycles *= 2;
    ScenarioMatrix::new()
        .environments(catalog::all())
        .strategies(Strategy::ALL.to_vec())
        .boards(vec![BoardSpec::Msp430Fr5994, BoardSpec::Custom(slow_cpu)])
        .workloads(vec![Workload::Har { samples: 6 }])
        .executor(ExecutorConfig {
            // BASE and bare ACE stall forever in harvested environments;
            // declare the ✗ after a few fruitless reboots to keep the
            // 48-scenario sweep fast.
            stall_outages: 6,
            ..ExecutorConfig::default()
        })
}

#[test]
fn fleet_report_is_identical_across_worker_counts() {
    let matrix = acceptance_matrix();
    assert_eq!(matrix.len(), 4 * 6 * 2);

    let one = FleetRunner::new(1).run(&matrix).unwrap();
    let two = FleetRunner::new(2).run(&matrix).unwrap();
    let eight = FleetRunner::new(8).run(&matrix).unwrap();

    assert_eq!(one.len(), 48);
    // Deterministic fold: equal reports and byte-identical rendering.
    assert_eq!(one, two);
    assert_eq!(one, eight);
    assert_eq!(one.to_string(), eight.to_string());
}

#[test]
fn fleet_results_match_paper_expectations() {
    let report = FleetRunner::new(8).run(&acceptance_matrix()).unwrap();

    for s in &report.scenarios {
        // The bench supply never browns out: everything completes there,
        // even the checkpoint-free baselines.
        if s.environment == "bench_supply" {
            assert_eq!(s.completed_runs, s.runs, "{}", s.name);
            assert_eq!(s.outages, 0, "{}", s.name);
        }
        // Strategies that persist no progress must never finish in a
        // harvested environment (Figure 7(b)'s ✗ columns), while FLEX
        // completes everywhere.
        if s.environment != "bench_supply" {
            match s.strategy {
                Strategy::Base | Strategy::Bare => {
                    assert_eq!(s.completed_runs, 0, "{}", s.name);
                    assert!(s.outages > 0, "{}", s.name);
                }
                Strategy::Flex => {
                    assert_eq!(s.completed_runs, s.runs, "{}", s.name);
                }
                _ => {}
            }
        }
        // Accuracy comes from the shared deployment: identical for every
        // environment of the same (workload, board, strategy, seed).
        assert!((0.0..=1.0).contains(&s.accuracy), "{}", s.name);
    }

    // Completed latencies feed the percentile pipeline.
    assert!(report.completed_runs() > 0);
    let p50 = report.latency_percentile_ms(50.0).unwrap();
    let p99 = report.latency_percentile_ms(99.0).unwrap();
    assert!(p50 > 0.0 && p99 >= p50);
}

#[test]
fn full_report_sink_reproduces_the_classic_report() {
    // The sink-based pipeline is a redesign of the reporting layer, not
    // of the results: FleetRunner::run (which now folds through
    // FullReportSink) and an explicitly sunk sweep must both equal the
    // classic dense report over the whole acceptance matrix.
    let matrix = acceptance_matrix();
    let classic = FleetRunner::new(4).run(&matrix).unwrap();
    let sunk = FleetRunner::builder()
        .workers(4)
        .sink(FullReportSink::new())
        .run(&matrix)
        .unwrap();
    assert_eq!(classic, sunk);
    assert_eq!(classic.to_string(), sunk.to_string());
}

#[test]
fn digest_sink_is_bit_identical_across_worker_counts() {
    // The streaming digest must be a pure function of the matrix: equal
    // (PartialEq over every counter, f64 sum and histogram bin) at 1, 2
    // and 8 workers over the 48-scenario acceptance matrix.
    let matrix = acceptance_matrix();
    let one = FleetRunner::builder()
        .workers(1)
        .sink(DigestSink::new())
        .run(&matrix)
        .unwrap();
    let two = FleetRunner::builder()
        .workers(2)
        .sink(DigestSink::new())
        .run(&matrix)
        .unwrap();
    let eight = FleetRunner::builder()
        .workers(8)
        .sink(DigestSink::new())
        .run(&matrix)
        .unwrap();
    assert_eq!(one, two);
    assert_eq!(one, eight);
    assert_eq!(one.to_string(), eight.to_string());

    // And it summarizes the same sweep the dense report sees.
    let full = FleetRunner::new(8).run(&matrix).unwrap();
    assert_eq!(one.scenarios as usize, full.len());
    assert_eq!(one.runs, full.total_runs());
    assert_eq!(one.completed_runs, full.completed_runs());
    assert_eq!(one.outages, full.total_outages());
    assert!((one.total_energy_mj() - full.total_energy_mj()).abs() < 1e-9);
    let exact = full.latency_percentile_ms(90.0).unwrap();
    let est = one.latency_ms.p90().unwrap();
    assert!(
        (est - exact).abs() / exact <= StatsDigest::RELATIVE_ERROR,
        "p90 sketch {est} vs exact {exact}"
    );
}

#[test]
fn dark_time_telemetry_reaches_every_sink() {
    let matrix = acceptance_matrix();
    let digest = FleetRunner::builder()
        .workers(4)
        .sink(DigestSink::new())
        .run(&matrix)
        .unwrap();
    // One dark-time sample per run, whatever the outcome, and the
    // sketch's sum must reconcile with the exact counter.
    assert_eq!(digest.dark_s.count(), digest.runs);
    assert!(
        (digest.dark_s.sum() - digest.charging_seconds).abs() <= 1e-9,
        "sketch sum {} vs exact {}",
        digest.dark_s.sum(),
        digest.charging_seconds
    );
    // Harvested environments actually spend dark time; the display
    // surfaces it for budget sweeps.
    assert!(digest.charging_seconds > 0.0);
    assert!(digest.to_string().contains("dark time"), "{digest}");

    // Grouped by strategy: completing strategies in harvested
    // environments must show nonzero dark time (they rode out outages),
    // and the per-group sketch counts cover every run.
    let grouped = FleetRunner::builder()
        .workers(2)
        .sink(GroupBySink::new(GroupAxis::Strategy))
        .run(&matrix)
        .unwrap();
    let total: u64 = grouped.groups.iter().map(|(_, d)| d.dark_s.count()).sum();
    assert_eq!(total, digest.runs);
    let flex = grouped.get("ACE+FLEX").unwrap();
    assert!(flex.dark_s.max().unwrap() > 0.0, "FLEX never went dark?");

    // Row sinks carry the per-run dark_s column.
    let (csv, _) = FleetRunner::builder()
        .workers(2)
        .sink(CsvSink::new(Vec::new()))
        .run(&matrix)
        .unwrap();
    let text = String::from_utf8(csv).unwrap();
    let header = text.lines().next().unwrap();
    assert!(header.split(',').any(|c| c == "dark_s"), "{header}");
    let (jsonl, _) = FleetRunner::builder()
        .workers(2)
        .sink(JsonlSink::new(Vec::new()))
        .run(&matrix)
        .unwrap();
    assert!(String::from_utf8(jsonl).unwrap().contains("\"dark_s\":"));
}

#[test]
fn grouped_and_streaming_sinks_are_worker_count_independent() {
    let matrix = acceptance_matrix();
    let grouped_one = FleetRunner::builder()
        .workers(1)
        .sink(GroupBySink::new(GroupAxis::Strategy))
        .run(&matrix)
        .unwrap();
    let grouped_eight = FleetRunner::builder()
        .workers(8)
        .sink(GroupBySink::new(GroupAxis::Strategy))
        .run(&matrix)
        .unwrap();
    assert_eq!(grouped_one, grouped_eight);
    assert_eq!(grouped_one.groups.len(), 6, "one group per strategy");
    // FLEX completes everywhere; BASE only on the bench supply.
    let flex = grouped_one.get("ACE+FLEX").unwrap();
    assert_eq!(flex.completed_runs, flex.runs);
    let base = grouped_one.get("BASE").unwrap();
    assert!(base.completed_runs < base.runs);

    // Row streams: byte-identical at any worker count, one row per run
    // in (matrix, run) order.
    let (jsonl_one, rows_one) = FleetRunner::builder()
        .workers(1)
        .sink(JsonlSink::new(Vec::new()))
        .run(&matrix)
        .unwrap();
    let (jsonl_eight, rows_eight) = FleetRunner::builder()
        .workers(8)
        .sink(JsonlSink::new(Vec::new()))
        .run(&matrix)
        .unwrap();
    assert_eq!(rows_one, matrix.len() as u64);
    assert_eq!(rows_one, rows_eight);
    assert_eq!(jsonl_one, jsonl_eight);
    let (csv_one, _) = FleetRunner::builder()
        .workers(1)
        .sink(CsvSink::new(Vec::new()))
        .run(&matrix)
        .unwrap();
    let (csv_eight, _) = FleetRunner::builder()
        .workers(8)
        .sink(CsvSink::new(Vec::new()))
        .run(&matrix)
        .unwrap();
    assert_eq!(csv_one, csv_eight);
    assert_eq!(
        String::from_utf8(csv_one).unwrap().lines().count(),
        matrix.len() + 1,
        "header plus one row per run"
    );
}

#[test]
fn paired_sinks_match_their_standalone_runs() {
    // A (digest, jsonl) pair folds both sinks over one sweep and must
    // equal each sink run by itself.
    let matrix = ScenarioMatrix::new()
        .environments(catalog::all())
        .strategies(vec![Strategy::Sonic, Strategy::Flex])
        .workloads(vec![Workload::Har { samples: 6 }])
        .executor(ExecutorConfig {
            stall_outages: 6,
            ..ExecutorConfig::default()
        });
    let (digest, (jsonl, rows)) = FleetRunner::builder()
        .workers(4)
        .sink((DigestSink::new(), JsonlSink::new(Vec::new())))
        .run(&matrix)
        .unwrap();
    let digest_alone = FleetRunner::builder()
        .workers(2)
        .sink(DigestSink::new())
        .run(&matrix)
        .unwrap();
    let (jsonl_alone, rows_alone) = FleetRunner::builder()
        .workers(1)
        .sink(JsonlSink::new(Vec::new()))
        .run(&matrix)
        .unwrap();
    assert_eq!(digest, digest_alone);
    assert_eq!(jsonl, jsonl_alone);
    assert_eq!(rows, rows_alone);
}

#[test]
fn energy_budgeted_matrix_counts_aborts_in_every_sink() {
    // A budget far below one inference cuts every run; the dense report
    // and the digest must agree on the abort counts.
    let matrix = ScenarioMatrix::new()
        .environments(vec![catalog::bench_supply()])
        .strategies(vec![Strategy::Sonic, Strategy::Flex])
        .workloads(vec![Workload::Har { samples: 4 }])
        .runs(2)
        .executor(ExecutorConfig {
            energy_budget_nj: Some(1_000.0),
            stall_outages: 6,
            ..ExecutorConfig::default()
        });
    let report = FleetRunner::new(2).run(&matrix).unwrap();
    for s in &report.scenarios {
        assert_eq!(s.completed_runs, 0, "{}", s.name);
        assert_eq!(s.energy_limited_runs, s.runs, "{}", s.name);
        assert_eq!(s.p50_ms(), None, "{}: no completed runs", s.name);
    }
    let digest = FleetRunner::builder()
        .workers(2)
        .sink(DigestSink::new())
        .run(&matrix)
        .unwrap();
    assert_eq!(digest.energy_limited_runs, digest.runs);
    assert_eq!(digest.completed_runs, 0);
    assert_eq!(digest.latency_ms.count(), 0);
}

#[test]
fn profiled_sweeps_leave_every_sink_bit_identical() {
    // Turning phase profiling on must not move a single bit of any
    // sink's report, at any worker count — the observability PR's
    // determinism bar. The profile itself rides a side channel.
    let matrix = acceptance_matrix();
    let plain = FleetRunner::builder()
        .workers(2)
        .sink(DigestSink::new())
        .run(&matrix)
        .unwrap();
    for workers in [1, 2, 8] {
        let (profiled, profile) = FleetRunner::builder()
            .workers(workers)
            .sink(DigestSink::new())
            .run_profiled(&matrix)
            .unwrap();
        assert_eq!(plain, profiled, "{workers} workers");
        assert_eq!(plain.to_string(), profiled.to_string(), "{workers} workers");
        assert!(profile.total_seconds() > 0.0, "{workers} workers");
        // The deployment cache is consulted exactly once per scenario;
        // the 48 scenarios share 6 strategies × 2 boards = 12 builds.
        assert_eq!(profile.caches.deployment.lookups(), 48, "{workers} workers");
        assert_eq!(profile.caches.deployment.entries, 12, "{workers} workers");
    }

    // Row streams: byte-identical with profiling on.
    let (jsonl_plain, rows_plain) = FleetRunner::builder()
        .workers(2)
        .sink(JsonlSink::new(Vec::new()))
        .run(&matrix)
        .unwrap();
    let ((jsonl_profiled, rows_profiled), _) = FleetRunner::builder()
        .workers(8)
        .sink(JsonlSink::new(Vec::new()))
        .run_profiled(&matrix)
        .unwrap();
    assert_eq!(rows_plain, rows_profiled);
    assert_eq!(jsonl_plain, jsonl_profiled);

    // Grouped sinks too.
    let grouped_plain = FleetRunner::builder()
        .workers(4)
        .sink(GroupBySink::new(GroupAxis::Strategy))
        .run(&matrix)
        .unwrap();
    let (grouped_profiled, _) = FleetRunner::builder()
        .workers(4)
        .sink(GroupBySink::new(GroupAxis::Strategy))
        .run_profiled(&matrix)
        .unwrap();
    assert_eq!(grouped_plain, grouped_profiled);
}

#[test]
fn phase_profile_counters_are_deterministic_and_merge_across_shards() {
    use ehdl::ehsim::ExecPhase;

    let matrix = acceptance_matrix();

    // At one worker the profile's span counts and cache counters are a
    // pure function of the matrix: two runs agree exactly (only the
    // wall-clock sums differ).
    let (_, first) = FleetRunner::builder()
        .workers(1)
        .sink(DigestSink::new())
        .run_profiled(&matrix)
        .unwrap();
    let (_, second) = FleetRunner::builder()
        .workers(1)
        .sink(DigestSink::new())
        .run_profiled(&matrix)
        .unwrap();
    for phase in ExecPhase::ALL {
        assert_eq!(
            first.digest(phase).count(),
            second.digest(phase).count(),
            "{} span count drifted between identical runs",
            phase.name()
        );
    }
    assert_eq!(first.caches, second.caches);

    // Across worker counts: the coordinator-side deployment and plan
    // counters are identical; the worker-side trace cache conserves its
    // lookup total (racing workers may shift the hit/miss split, both
    // recordings being bit-identical), and executed-vs-replayed work is
    // likewise conserved.
    let executed =
        first.digest(ExecPhase::PlanExec).count() + first.digest(ExecPhase::TraceReplay).count();
    for workers in [2, 8] {
        let (_, profile) = FleetRunner::builder()
            .workers(workers)
            .sink(DigestSink::new())
            .run_profiled(&matrix)
            .unwrap();
        assert_eq!(
            profile.caches.deployment, first.caches.deployment,
            "{workers} workers"
        );
        assert_eq!(profile.caches.plan, first.caches.plan, "{workers} workers");
        assert_eq!(
            profile.caches.trace.lookups(),
            first.caches.trace.lookups(),
            "{workers} workers"
        );
        assert_eq!(
            profile.digest(ExecPhase::PlanExec).count()
                + profile.digest(ExecPhase::TraceReplay).count(),
            executed,
            "{workers} workers"
        );
    }

    // Shard merge: profiling two disjoint ranges and merging the
    // profiles in range order reassembles the whole sweep's span counts
    // and lookup totals — what a resumed shard sweep folds together.
    let mid = matrix.len() / 2;
    let runner = FleetRunner::new(1);
    let (_, mut lo) = runner
        .run_range_profiled_with_sink(&matrix, 0..mid, DigestSink::new())
        .unwrap();
    let (_, hi) = runner
        .run_range_profiled_with_sink(&matrix, mid..matrix.len(), DigestSink::new())
        .unwrap();
    lo.merge(&hi);
    for phase in ExecPhase::ALL {
        assert_eq!(
            lo.digest(phase).count(),
            first.digest(phase).count(),
            "{} span count lost in the shard merge",
            phase.name()
        );
    }
    assert_eq!(lo.caches.deployment.lookups(), 48);
    assert_eq!(
        lo.caches.trace.lookups(),
        first.caches.trace.lookups(),
        "trace lookups lost in the shard merge"
    );
}

#[test]
fn deployment_sharing_gives_equal_accuracy_across_environments() {
    let matrix = ScenarioMatrix::new()
        .environments(catalog::all())
        .strategies(vec![Strategy::Flex])
        .workloads(vec![Workload::Har { samples: 8 }]);
    let report = FleetRunner::new(4).run(&matrix).unwrap();
    assert_eq!(report.len(), 4);
    let acc = report.scenarios[0].accuracy;
    for s in &report.scenarios {
        assert_eq!(s.accuracy, acc, "{}", s.name);
    }
}
