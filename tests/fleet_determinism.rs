//! Fleet determinism: the same `ScenarioMatrix` must fold to an equal
//! `FleetReport` at any worker count — the acceptance bar for the sweep
//! engine (4 environments × 6 strategies × 2 boards = 48 scenarios).

use ehdl::device::CostTable;
use ehdl::ehsim::{catalog, ExecutorConfig};
use ehdl::prelude::*;
use ehdl_fleet::{FleetRunner, ScenarioMatrix, Workload};

/// The full acceptance matrix: every catalog environment, every
/// strategy, the paper board plus a 2× slower CPU ablation board.
fn acceptance_matrix() -> ScenarioMatrix {
    let mut slow_cpu = CostTable::msp430fr5994();
    slow_cpu.cpu_op_cycles *= 2;
    ScenarioMatrix::new()
        .environments(catalog::all())
        .strategies(Strategy::ALL.to_vec())
        .boards(vec![BoardSpec::Msp430Fr5994, BoardSpec::Custom(slow_cpu)])
        .workloads(vec![Workload::Har { samples: 6 }])
        .executor(ExecutorConfig {
            // BASE and bare ACE stall forever in harvested environments;
            // declare the ✗ after a few fruitless reboots to keep the
            // 48-scenario sweep fast.
            stall_outages: 6,
            ..ExecutorConfig::default()
        })
}

#[test]
fn fleet_report_is_identical_across_worker_counts() {
    let matrix = acceptance_matrix();
    assert_eq!(matrix.len(), 4 * 6 * 2);

    let one = FleetRunner::new(1).run(&matrix).unwrap();
    let two = FleetRunner::new(2).run(&matrix).unwrap();
    let eight = FleetRunner::new(8).run(&matrix).unwrap();

    assert_eq!(one.len(), 48);
    // Deterministic fold: equal reports and byte-identical rendering.
    assert_eq!(one, two);
    assert_eq!(one, eight);
    assert_eq!(one.to_string(), eight.to_string());
}

#[test]
fn fleet_results_match_paper_expectations() {
    let report = FleetRunner::new(8).run(&acceptance_matrix()).unwrap();

    for s in &report.scenarios {
        // The bench supply never browns out: everything completes there,
        // even the checkpoint-free baselines.
        if s.environment == "bench_supply" {
            assert_eq!(s.completed_runs, s.runs, "{}", s.name);
            assert_eq!(s.outages, 0, "{}", s.name);
        }
        // Strategies that persist no progress must never finish in a
        // harvested environment (Figure 7(b)'s ✗ columns), while FLEX
        // completes everywhere.
        if s.environment != "bench_supply" {
            match s.strategy {
                Strategy::Base | Strategy::Bare => {
                    assert_eq!(s.completed_runs, 0, "{}", s.name);
                    assert!(s.outages > 0, "{}", s.name);
                }
                Strategy::Flex => {
                    assert_eq!(s.completed_runs, s.runs, "{}", s.name);
                }
                _ => {}
            }
        }
        // Accuracy comes from the shared deployment: identical for every
        // environment of the same (workload, board, strategy, seed).
        assert!((0.0..=1.0).contains(&s.accuracy), "{}", s.name);
    }

    // Completed latencies feed the percentile pipeline.
    assert!(report.completed_runs() > 0);
    let p50 = report.latency_percentile_ms(50.0);
    let p99 = report.latency_percentile_ms(99.0);
    assert!(p50 > 0.0 && p99 >= p50);
}

#[test]
fn deployment_sharing_gives_equal_accuracy_across_environments() {
    let matrix = ScenarioMatrix::new()
        .environments(catalog::all())
        .strategies(vec![Strategy::Flex])
        .workloads(vec![Workload::Har { samples: 8 }]);
    let report = FleetRunner::new(4).run(&matrix).unwrap();
    assert_eq!(report.len(), 4);
    let acc = report.scenarios[0].accuracy;
    for s in &report.scenarios {
        assert_eq!(s.accuracy, acc, "{}", s.name);
    }
}
