//! Figure 6 at the data level: FLEX resumes an interrupted BCM chain at
//! the failed stage; TAILS rolls the whole chain back. Run on the real
//! MNIST FC1 layer (256×256, block 128) with real Q15 payloads.

use ehdl::ace::{reference, QLayer, QuantizedModel};
use ehdl::fixed::{OverflowStats, Q15};
use ehdl::flex::machine::{BcmChainMachine, ChainPolicy};

fn mnist_fc1() -> ehdl::ace::QBcmDense {
    let q = QuantizedModel::from_model(&ehdl::nn::zoo::mnist()).unwrap();
    match q.layers()[7].clone() {
        QLayer::BcmDense(d) => d,
        other => panic!("expected BCM FC1, got {}", other.name()),
    }
}

fn fc1_input(layer: &ehdl::ace::QBcmDense) -> Vec<Q15> {
    (0..layer.in_dim)
        .map(|i| Q15::from_f32(0.2 * ((i as f32) * 0.13).sin()))
        .collect()
}

#[test]
fn flex_recovers_mnist_fc1_bit_exactly_under_random_faults() {
    let layer = mnist_fc1();
    let x = fc1_input(&layer);
    let mut stats = OverflowStats::new();
    let want = reference::bcm_forward(&layer, &x, &mut stats).unwrap();

    // A deterministic "random" fault schedule: fail whenever the step
    // counter hashes below a threshold.
    for seed in 0..5u64 {
        let mut m = BcmChainMachine::new(layer.clone(), &x, ChainPolicy::Flex).unwrap();
        let mut k = 0u64;
        loop {
            let done = m.step().unwrap();
            k += 1;
            if (k.wrapping_mul(0x9E37_79B9).wrapping_add(seed * 7919)).is_multiple_of(5) {
                m.power_fail();
            }
            if done {
                break;
            }
        }
        assert_eq!(m.output().unwrap(), want.as_slice(), "seed {seed}");
    }
}

#[test]
fn tails_rollback_wastes_stages_on_mnist_fc1() {
    let layer = mnist_fc1();
    let x = fc1_input(&layer);

    // Fail every 9 steps: a 6-stage TAILS chain can still commit between
    // failures (any shorter period livelocks TAILS — the rollback
    // pathology in the extreme).
    let run = |policy: ChainPolicy| -> u64 {
        let mut m = BcmChainMachine::new(layer.clone(), &x, policy).unwrap();
        let mut k = 0u64;
        loop {
            if m.step().unwrap() {
                break;
            }
            k += 1;
            if k.is_multiple_of(9) {
                m.power_fail();
            }
        }
        m.stages_executed()
    };

    let flex_stages = run(ChainPolicy::Flex);
    let tails_stages = run(ChainPolicy::Tails);
    assert!(
        tails_stages > flex_stages,
        "tails {tails_stages} vs flex {flex_stages}"
    );
    // And both still produce the right answer (checked per policy).
    for policy in [ChainPolicy::Flex, ChainPolicy::Tails] {
        let mut stats = OverflowStats::new();
        let want = reference::bcm_forward(&layer, &x, &mut stats).unwrap();
        let mut m = BcmChainMachine::new(layer.clone(), &x, policy).unwrap();
        let mut k = 0u64;
        loop {
            if m.step().unwrap() {
                break;
            }
            k += 1;
            if k.is_multiple_of(9) {
                m.power_fail();
            }
        }
        assert_eq!(m.output().unwrap(), want.as_slice(), "{policy:?}");
    }
}

#[test]
fn tails_livelocks_when_failures_outpace_chains() {
    // The extreme of Figure 6 left: if power dies faster than a chain
    // can complete, TAILS makes no forward progress at all, while FLEX
    // still finishes. (Bounded-step check, not an infinite loop.)
    let layer = mnist_fc1();
    let x = fc1_input(&layer);
    let budget = 200_000u64;

    let progress = |policy: ChainPolicy| -> bool {
        let mut m = BcmChainMachine::new(layer.clone(), &x, policy).unwrap();
        let mut k = 0u64;
        loop {
            if m.step().unwrap() {
                return true;
            }
            k += 1;
            if k.is_multiple_of(4) {
                m.power_fail(); // 4 < 6 stages: chains can never commit
            }
            if k > budget {
                return false;
            }
        }
    };
    assert!(progress(ChainPolicy::Flex), "FLEX must finish");
    assert!(!progress(ChainPolicy::Tails), "TAILS must livelock");
}

#[test]
fn flex_checkpoint_size_matches_fig6_claims() {
    // Fig 6: FLEX persists block index, intermediate result, and the
    // control bits b0–b2 — "as the control bits are small, it requires
    // small memory footprint". For block 128 the intermediate is
    // 2×128 complex words; the control state is a handful of words.
    let layer = mnist_fc1();
    let b = layer.block;
    let intermediate_words = 2 * 2 * b; // two complex buffers
    let control_words = 4; // state bits + rb + cb + crc
    let total_bytes = 2 * (intermediate_words + control_words);
    // Comfortably inside the FR5994 checkpoint budget and far below
    // checkpointing all activations.
    assert!(total_bytes < 2048, "checkpoint {total_bytes} bytes");
    let q = QuantizedModel::from_model(&ehdl::nn::zoo::mnist()).unwrap();
    let all_activations = q.max_activation_elems() * 2;
    assert!(total_bytes < all_activations);
}
