//! Executor parity: the compiled-plan fast path must be **bit-identical**
//! to the retained op-by-op reference interpreter — same outages, same
//! executed/wasted ops, same energy, same per-component meter — across
//! all six strategies, the full environment catalog, and both session-
//! and fleet-level entry points. This is the acceptance bar for the
//! compile-once execution-plan optimization: any float reordering in the
//! fast path shows up here as a hard failure.

use ehdl::device::CostTable;
use ehdl::ehsim::{catalog, ExecutorConfig, IntermittentExecutor};
use ehdl::prelude::*;
use ehdl_fleet::{FleetRunner, ScenarioMatrix, Workload};

/// Bounded executor so strategies that can never finish (BASE, bare ACE
/// under harvested power) declare their ✗ quickly.
fn quick_executor() -> ExecutorConfig {
    ExecutorConfig {
        stall_outages: 6,
        max_wall_seconds: 600.0,
        ..ExecutorConfig::default()
    }
}

fn deployment_for(model: &mut ehdl::nn::Model, data: &ehdl::datasets::Dataset) -> Deployment {
    Deployment::builder(model, data)
        .build()
        .expect("deployment builds")
}

/// Plan-based vs. reference run for every (strategy, environment) pair
/// of one workload, on fresh boards each time.
fn assert_strategy_catalog_parity(mut model: ehdl::nn::Model, data: ehdl::datasets::Dataset) {
    let deployment = deployment_for(&mut model, &data);
    let executor = IntermittentExecutor::new(quick_executor());
    for strategy in Strategy::ALL {
        let program = strategy.lower(deployment.quantized(), deployment.program());
        let plan =
            ehdl::ehsim::ExecutionPlan::compile(program.clone(), &deployment.board_spec().board());
        for environment in catalog::all() {
            let mut board_planned = deployment.board_spec().board();
            let mut board_reference = deployment.board_spec().board();
            let mut supply_planned = environment.supply();
            let mut supply_reference = environment.supply();
            let planned = executor.run_plan(&plan, &mut board_planned, &mut supply_planned);
            let reference =
                executor.run_unplanned(&program, &mut board_reference, &mut supply_reference);
            assert_eq!(
                planned,
                reference,
                "strategy {strategy} in {}",
                environment.name()
            );
            assert_eq!(
                board_planned.meter(),
                board_reference.meter(),
                "board meter drift for {strategy} in {}",
                environment.name()
            );
        }
    }
}

#[test]
fn har_parity_across_strategies_and_catalog() {
    assert_strategy_catalog_parity(ehdl::nn::zoo::har(), ehdl::datasets::har(16, 3));
}

/// The legacy quantized dark loop (`charge_step_s: Some(step)`) must
/// also hold plan-vs-reference parity — the analytic solver and the
/// stepped integrator are two modes of **both** executor paths, at the
/// same loop-head points.
#[test]
fn stepped_legacy_mode_parity_across_the_catalog() {
    let mut model = ehdl::nn::zoo::har();
    let data = ehdl::datasets::har(8, 3);
    let deployment = deployment_for(&mut model, &data);
    let executor = IntermittentExecutor::new(ExecutorConfig {
        charge_step_s: Some(1e-3),
        ..quick_executor()
    });
    for strategy in [Strategy::Sonic, Strategy::Flex] {
        let program = strategy.lower(deployment.quantized(), deployment.program());
        let plan =
            ehdl::ehsim::ExecutionPlan::compile(program.clone(), &deployment.board_spec().board());
        for environment in catalog::all() {
            let mut board_planned = deployment.board_spec().board();
            let mut board_reference = deployment.board_spec().board();
            let mut supply_planned = environment.supply();
            let mut supply_reference = environment.supply();
            let planned = executor.run_plan(&plan, &mut board_planned, &mut supply_planned);
            let reference =
                executor.run_unplanned(&program, &mut board_reference, &mut supply_reference);
            assert_eq!(
                planned,
                reference,
                "stepped mode: {strategy} in {}",
                environment.name()
            );
        }
    }
}

#[test]
fn mnist_parity_across_strategies_and_catalog() {
    assert_strategy_catalog_parity(ehdl::nn::zoo::mnist(), ehdl::datasets::mnist(8, 5));
}

/// The 48-scenario acceptance matrix (4 environments × 6 strategies ×
/// 2 boards), two runs per scenario so the second run starts from a
/// nonzero board meter — the planned fleet path must reproduce the
/// reference interpreter's `FleetReport` bit for bit at 1, 2 and 8
/// workers.
#[test]
fn fleet_matrix_parity_at_1_2_and_8_workers() {
    let mut slow_cpu = CostTable::msp430fr5994();
    slow_cpu.cpu_op_cycles *= 2;
    let matrix = ScenarioMatrix::new()
        .environments(catalog::all())
        .strategies(Strategy::ALL.to_vec())
        .boards(vec![BoardSpec::Msp430Fr5994, BoardSpec::Custom(slow_cpu)])
        .workloads(vec![Workload::Har { samples: 6 }])
        .runs(2)
        .executor(quick_executor());
    assert_eq!(matrix.len(), 48);

    let reference = FleetRunner::new(1)
        .reference_executor(true)
        .run(&matrix)
        .expect("reference sweep");
    for workers in [1, 2, 8] {
        let planned = FleetRunner::new(workers)
            .run(&matrix)
            .expect("planned sweep");
        assert_eq!(reference, planned, "{workers} workers");
        assert_eq!(reference.to_string(), planned.to_string());
    }
}

/// Cross-seed plan sharing: scenarios that differ only in dataset seed
/// share one compiled plan; their reports must still match a reference
/// sweep that lowers each scenario's program from its own deployment.
#[test]
fn plan_sharing_across_seeds_is_lossless() {
    let matrix = ScenarioMatrix::new()
        .environments(vec![catalog::office_rf(), catalog::solar_day()])
        .strategies(vec![Strategy::Tails, Strategy::Flex])
        .workloads(vec![Workload::Mnist { samples: 4 }])
        .seeds(vec![0, 11, 42])
        .executor(quick_executor());
    let planned = FleetRunner::new(4).run(&matrix).expect("planned sweep");
    let reference = FleetRunner::new(4)
        .reference_executor(true)
        .run(&matrix)
        .expect("reference sweep");
    assert_eq!(planned, reference);
}

/// Probes are pure observers: for every (strategy, environment) pair a
/// plan run watched by an `EventRing` + `PhaseProfile` pair and a probed
/// reference run must reproduce their unprobed twins bit for bit —
/// report and board meter alike — while the event stream itself stays
/// well-formed (monotone sim time, exactly one terminal `run_end`).
#[test]
fn probed_runs_are_bit_identical_across_strategies_and_catalog() {
    use ehdl::ehsim::{EventRing, ExecPhase};
    use ehdl_fleet::PhaseProfile;

    let mut model = ehdl::nn::zoo::har();
    let data = ehdl::datasets::har(8, 3);
    let deployment = deployment_for(&mut model, &data);
    let executor = IntermittentExecutor::new(quick_executor());
    for strategy in Strategy::ALL {
        let program = strategy.lower(deployment.quantized(), deployment.program());
        let plan =
            ehdl::ehsim::ExecutionPlan::compile(program.clone(), &deployment.board_spec().board());
        for environment in catalog::all() {
            let name = environment.name();

            let mut board_plain = deployment.board_spec().board();
            let mut supply_plain = environment.supply();
            let plain = executor.run_plan(&plan, &mut board_plain, &mut supply_plain);

            let mut board_probed = deployment.board_spec().board();
            let mut supply_probed = environment.supply();
            let mut probe = (EventRing::new(1 << 16), PhaseProfile::new());
            let probed =
                executor.run_plan_probed(&plan, &mut board_probed, &mut supply_probed, &mut probe);
            assert_eq!(plain, probed, "{strategy} in {name}");
            assert_eq!(
                board_plain.meter(),
                board_probed.meter(),
                "meter drift under probes: {strategy} in {name}"
            );

            let (ring, profile) = probe;
            assert_eq!(ring.dropped(), 0, "{strategy} in {name}: ring too small");
            let last = ring.events().last().expect("a run emits at least run_end");
            assert_eq!(last.label(), "run_end", "{strategy} in {name}");
            assert_eq!(
                ring.events().filter(|e| e.label() == "run_end").count(),
                1,
                "{strategy} in {name}"
            );
            let mut prev = 0.0;
            for event in ring.events() {
                assert!(
                    event.t() >= prev,
                    "sim time went backwards at {event:?} ({strategy} in {name})"
                );
                prev = event.t();
            }
            // Every outage implies a dark recharge the profile timed —
            // except the last one of a stalled run, which aborts before
            // waiting out its dark phase.
            if plain.outages > 0 {
                assert!(
                    profile.digest(ExecPhase::ChargeSolve).count() >= plain.outages - 1,
                    "{strategy} in {name}: {} charge-solve spans for {} outages",
                    profile.digest(ExecPhase::ChargeSolve).count(),
                    plain.outages
                );
            }
            if plain.restores > 0 {
                assert!(
                    profile.digest(ExecPhase::CheckpointRestore).count() > 0,
                    "{strategy} in {name}: no restore spans despite {} restores",
                    plain.restores
                );
            }

            // The reference-path twin holds the same bit-identity bar.
            let mut board_ref = deployment.board_spec().board();
            let mut supply_ref = environment.supply();
            let reference = executor.run_unplanned(&program, &mut board_ref, &mut supply_ref);
            let mut board_ref_probed = deployment.board_spec().board();
            let mut supply_ref_probed = environment.supply();
            let mut ring_ref = EventRing::new(1 << 16);
            let reference_probed = executor.run_unplanned_probed(
                &program,
                &mut board_ref_probed,
                &mut supply_ref_probed,
                &mut ring_ref,
            );
            assert_eq!(
                reference, reference_probed,
                "reference: {strategy} in {name}"
            );
            assert_eq!(
                board_ref.meter(),
                board_ref_probed.meter(),
                "reference meter drift under probes: {strategy} in {name}"
            );
            assert_eq!(
                ring_ref.events().last().map(|e| e.label()),
                Some("run_end"),
                "reference: {strategy} in {name}"
            );
        }
    }
}

/// The traced recording path (what fleet sweeps replay from) must record
/// the identical trace with and without a probe attached.
#[test]
fn traced_recording_is_probe_invariant() {
    use ehdl::ehsim::EventRing;

    let mut model = ehdl::nn::zoo::har();
    let data = ehdl::datasets::har(8, 3);
    let deployment = deployment_for(&mut model, &data);
    let executor = IntermittentExecutor::new(quick_executor());
    let program = Strategy::Flex.lower(deployment.quantized(), deployment.program());
    let plan = ehdl::ehsim::ExecutionPlan::compile(program, &deployment.board_spec().board());
    for environment in catalog::all() {
        let mut board_plain = deployment.board_spec().board();
        let mut supply_plain = environment.supply();
        let (report_plain, trace_plain) =
            executor.run_plan_traced(&plan, &mut board_plain, &mut supply_plain);

        let mut board_probed = deployment.board_spec().board();
        let mut supply_probed = environment.supply();
        let mut ring = EventRing::new(1 << 16);
        let (report_probed, trace_probed) = executor.run_plan_traced_probed(
            &plan,
            &mut board_probed,
            &mut supply_probed,
            &mut ring,
        );
        assert_eq!(report_plain, report_probed, "{}", environment.name());
        assert_eq!(trace_plain, trace_probed, "{}", environment.name());
        assert!(!ring.is_empty(), "{}", environment.name());
    }
}

/// The continuous-power fold baked into the plan must equal an actual
/// continuous replay of the lowered program, for every strategy.
#[test]
fn continuous_fold_parity_across_strategies() {
    let model = ehdl::nn::zoo::har();
    let data = ehdl::datasets::har(16, 3);
    for strategy in Strategy::ALL {
        let mut m = model.clone();
        let deployment = Deployment::builder(&mut m, &data)
            .strategy(strategy)
            .build()
            .expect("deployment builds");
        let session = deployment.session();
        let mut pricing = deployment.board_spec().board();
        let cost = ehdl::ehsim::run_continuous(session.program(), &mut pricing);
        assert_eq!(session.continuous_cost(), cost, "{strategy}");
        assert_eq!(session.continuous_meter(), pricing.meter(), "{strategy}");
    }
}
