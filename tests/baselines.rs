//! Cross-strategy orderings on all three workloads (the Figure 7(a) and
//! 7(c) shapes, continuous power).

use ehdl::ace::QuantizedModel;
use ehdl::flex::compare::{compare, paper_supply, Comparison};

fn comparison(model: ehdl::nn::Model) -> Comparison {
    let q = QuantizedModel::from_model(&model).unwrap();
    let (h, c) = paper_supply();
    compare(&q, &h, &c, false).unwrap()
}

fn speedup(cmp: &Comparison, baseline: &str) -> f64 {
    cmp.speedup_over(baseline).expect("baseline present")
}

fn energy_saving(cmp: &Comparison, baseline: &str) -> f64 {
    cmp.energy_saving_over(baseline).expect("baseline present")
}

#[test]
fn fig7a_orderings_hold_on_all_models() {
    for model in [
        ehdl::nn::zoo::mnist(),
        ehdl::nn::zoo::har(),
        ehdl::nn::zoo::okg(),
    ] {
        let name = model.name().to_string();
        let cmp = comparison(model);
        // ACE+FLEX beats every baseline on latency.
        for baseline in ["BASE", "SONIC", "TAILS"] {
            let s = speedup(&cmp, baseline);
            assert!(s > 1.0, "{name}: no speedup over {baseline} ({s})");
        }
        // SONIC is the slowest system (BASE does the same software work
        // without checkpoint writes).
        assert!(
            speedup(&cmp, "SONIC") > speedup(&cmp, "BASE"),
            "{name}: SONIC should be slower than BASE"
        );
        // TAILS (accelerated) sits between SONIC and ACE+FLEX.
        assert!(
            speedup(&cmp, "SONIC") > speedup(&cmp, "TAILS"),
            "{name}: TAILS should beat SONIC"
        );
    }
}

#[test]
fn fig7a_magnitudes_are_in_band() {
    // Paper: ACE+FLEX vs SONIC = 4x (MNIST), 5.7x (HAR), 3.3x (OKG).
    //
    // Reproduction note (EXPERIMENTS.md): our baselines evaluate the
    // compressed FC layers by *direct circulant* loops (the only
    // memory-feasible software execution — dense OKG FC weights would
    // not fit the 256 KB FRAM), which costs the full `in×out` MAC count.
    // On the conv-dominated MNIST this reproduces the paper's factor
    // closely; on the FC-heavy HAR/OKG it *amplifies* the gap beyond the
    // paper's numbers (the paper does not specify its baselines' FC
    // implementation). We therefore band-check MNIST tightly and only
    // lower-bound the FC-heavy models.
    let mnist = speedup(&comparison(ehdl::nn::zoo::mnist()), "SONIC");
    assert!(
        (2.0..12.0).contains(&mnist),
        "mnist speedup {mnist} vs paper 4.0"
    );
    let har = speedup(&comparison(ehdl::nn::zoo::har()), "SONIC");
    assert!(har > 5.7 / 2.0, "har speedup {har} vs paper 5.7");
    let okg = speedup(&comparison(ehdl::nn::zoo::okg()), "SONIC");
    assert!(okg > 3.3 / 2.0, "okg speedup {okg} vs paper 3.3");
}

#[test]
fn fig7c_energy_savings_are_in_band() {
    // Paper: energy saving vs SONIC = 6.1x / 10.9x / 6.25x. Same
    // reproduction note as fig7a: MNIST is band-checked, FC-heavy
    // models are lower-bounded (our baselines' direct-circulant FC
    // amplifies their gap).
    let cases = [
        (ehdl::nn::zoo::mnist(), 6.1, Some(20.0)),
        (ehdl::nn::zoo::har(), 10.9, None),
        (ehdl::nn::zoo::okg(), 6.25, None),
    ];
    for (model, paper_factor, upper) in cases {
        let name = model.name().to_string();
        let cmp = comparison(model);
        let got = energy_saving(&cmp, "SONIC");
        assert!(
            got > paper_factor / 3.0,
            "{name}: energy saving {got} vs paper {paper_factor}"
        );
        if let Some(up) = upper {
            assert!(got < up, "{name}: energy saving {got} implausibly high");
        }
        assert!(
            energy_saving(&cmp, "TAILS") < got,
            "{name}: TAILS saving should be smaller than SONIC saving"
        );
    }
}

#[test]
fn speedup_grows_with_fc_fraction() {
    // The BCM+FFT contribution targets FC layers, so the gap over the
    // software baseline must grow with the workload's FC share:
    // MNIST (conv-dominated) < HAR < OKG (almost all FC). The paper
    // shows the same MNIST-vs-HAR ordering; its OKG column is smaller,
    // which no memory-feasible baseline cost model reproduces — see
    // EXPERIMENTS.md.
    let mnist = speedup(&comparison(ehdl::nn::zoo::mnist()), "SONIC");
    let har = speedup(&comparison(ehdl::nn::zoo::har()), "SONIC");
    let okg = speedup(&comparison(ehdl::nn::zoo::okg()), "SONIC");
    assert!(mnist < har, "mnist {mnist} < har {har}");
    assert!(har < okg, "har {har} < okg {okg}");
}

#[test]
fn lea_energy_dominates_less_than_cpu_in_flex() {
    // Fig 7(c): LEA+DMA run in low-power mode, so the accelerated
    // strategy's energy is not CPU-dominated the way SONIC's is.
    use ehdl::device::Component;
    let cmp = comparison(ehdl::nn::zoo::mnist());
    let flex = cmp.expect("ACE+FLEX");
    let sonic = cmp.expect("SONIC");
    let flex_cpu_share = flex.continuous_meter.energy_of(Component::Cpu).nanojoules()
        / flex.continuous_meter.total_energy().nanojoules();
    let sonic_cpu_share = sonic
        .continuous_meter
        .energy_of(Component::Cpu)
        .nanojoules()
        / sonic.continuous_meter.total_energy().nanojoules();
    assert!(
        flex_cpu_share < sonic_cpu_share,
        "flex cpu share {flex_cpu_share} vs sonic {sonic_cpu_share}"
    );
    assert!(flex.continuous_meter.energy_of(Component::Lea).nanojoules() > 0.0);
}
